import pytest

from repro.core.runtime import SlothRuntime
from repro.core.thunk import force
from repro.orm import (
    Column, EAGER, Entity, EntityNotFound, LAZY, ManyToOne, OneToMany,
    OriginalBackend, Session, SlothBackend, schema_ddl,
)
from repro.sqldb.types import INTEGER, TEXT


class Author(Entity):
    __table__ = "author"
    id = Column(INTEGER, primary_key=True)
    name = Column(TEXT)
    books = OneToMany("BookEntity", foreign_key="author_id", fetch=LAZY,
                      order_by="id")


class BookEntity(Entity):
    __table__ = "book_e"
    id = Column(INTEGER, primary_key=True)
    author_id = Column(INTEGER)
    title = Column(TEXT)
    author = ManyToOne("Author", column="author_id", fetch=EAGER)


@pytest.fixture
def orm_db(sim_stack):
    db, clock, server, driver, batch_driver = sim_stack
    for ddl in schema_ddl([Author, BookEntity]):
        db.execute(ddl)
    db.execute("INSERT INTO author (id, name) VALUES (1, 'Knuth'),"
               " (2, 'Dijkstra')")
    for i in range(4):
        db.execute("INSERT INTO book_e (id, author_id, title) "
                   "VALUES (?, ?, ?)", (10 + i, 1 + i % 2, f"Vol {i}"))
    return sim_stack


@pytest.fixture
def original_session(orm_db):
    _, _, _, driver, _ = orm_db
    return Session(OriginalBackend(driver)), driver


@pytest.fixture
def sloth_session(orm_db):
    db, clock, server, _, batch_driver = orm_db
    runtime = SlothRuntime(batch_driver, clock, server.cost_model)
    return Session(SlothBackend(runtime)), batch_driver, runtime


class TestOriginalMode:
    def test_find_is_immediate(self, original_session):
        session, driver = original_session
        author = session.find(Author, 1)
        assert driver.stats.round_trips == 1
        assert author.name == "Knuth"

    def test_find_missing_returns_none(self, original_session):
        session, _ = original_session
        assert session.find(Author, 99) is None

    def test_get_missing_raises(self, original_session):
        session, _ = original_session
        with pytest.raises(EntityNotFound):
            session.get(Author, 99)

    def test_identity_map_avoids_requery(self, original_session):
        session, driver = original_session
        a1 = session.find(Author, 1)
        a2 = session.find(Author, 1)
        assert a1 is a2
        assert driver.stats.round_trips == 1

    def test_lazy_collection_loads_on_access(self, original_session):
        session, driver = original_session
        author = session.find(Author, 1)
        trips = driver.stats.round_trips
        books = author.books
        assert driver.stats.round_trips == trips  # proxy, not loaded yet
        assert [b.title for b in books] == ["Vol 0", "Vol 2"]
        assert driver.stats.round_trips == trips + 1

    def test_eager_many_to_one_loads_at_deserialize(self, original_session):
        session, driver = original_session
        book = session.find(BookEntity, 10)
        # find + eager author = 2 round trips already done
        assert driver.stats.round_trips == 2
        assert book.author.name == "Knuth"
        assert driver.stats.round_trips == 2

    def test_query_builder(self, original_session):
        session, _ = original_session
        books = session.query(BookEntity).where(
            "author_id = ?", 1).order_by("id DESC").all()
        assert [b.id for b in books] == [12, 10]

    def test_query_count_and_first(self, original_session):
        session, _ = original_session
        assert force(session.query(BookEntity).count()) == 4
        first = session.query(BookEntity).order_by("id").first()
        assert first.id == 10

    def test_persist_update_delete(self, original_session):
        session, _ = original_session
        session.persist(Author(id=3, name="Lamport"))
        found = session.query(Author).where("name = ?", "Lamport").first()
        assert found.id == 3
        found.name = "L. Lamport"
        session.update(found)
        session.identity_map.clear()
        again = session.get(Author, 3)
        assert again.name == "L. Lamport"
        session.delete(again)
        assert session.find(Author, 3) is None


class TestSlothMode:
    def test_find_registers_without_round_trip(self, sloth_session):
        session, driver, runtime = sloth_session
        author = session.find(Author, 1)
        assert driver.stats.round_trips == 0
        assert runtime.query_store.pending_count == 1
        assert author.name == "Knuth"  # forces -> one batch
        assert driver.stats.round_trips == 1

    def test_finds_batch_together(self, sloth_session):
        session, driver, _ = sloth_session
        a1 = session.find(Author, 1)
        a2 = session.find(Author, 2)
        assert driver.stats.round_trips == 0
        assert a1.name == "Knuth"
        assert driver.stats.round_trips == 1
        assert a2.name == "Dijkstra"  # came in the same batch
        assert driver.stats.round_trips == 1

    def test_duplicate_finds_dedup_in_store(self, sloth_session):
        session, driver, runtime = sloth_session
        session.find(Author, 1)
        session.find(Author, 1)
        assert runtime.query_store.pending_count == 1
        assert runtime.query_store.stats.dedup_hits == 1

    def test_identity_map_after_force(self, sloth_session):
        session, _, _ = sloth_session
        p1 = session.find(Author, 1)
        name = p1.name  # force + deserialize
        assert name == "Knuth"
        p2 = session.find(Author, 1)
        assert force(p2) is force(p1)

    def test_relation_access_forces_owner_then_registers(
            self, sloth_session):
        session, driver, runtime = sloth_session
        author = session.find(Author, 1)
        books = author.books  # forces author, registers books query
        assert driver.stats.round_trips == 1
        assert runtime.query_store.pending_count >= 1
        assert [b.title for b in books] == ["Vol 0", "Vol 2"]
        assert driver.stats.round_trips == 2

    def test_write_flushes_pending_batch(self, sloth_session):
        session, driver, runtime = sloth_session
        session.find(Author, 2)
        session.persist(Author(id=5, name="Hoare"))
        assert runtime.query_store.pending_count == 0
        # read and write went out together in one round trip
        assert driver.stats.round_trips == 1

    def test_unforced_queries_never_issue(self, sloth_session):
        session, driver, _ = sloth_session
        session.find(Author, 1)
        session.query(BookEntity).where("author_id = ?", 2).all()
        # Nothing forced: no round trips at all.
        assert driver.stats.round_trips == 0
