"""Shared fixtures: seeded databases and app stacks (built once)."""

import pytest

from repro.net.clock import CostModel, SimClock
from repro.net.driver import BatchDriver, Driver
from repro.net.server import DatabaseServer
from repro.sqldb import Database


@pytest.fixture
def db():
    """An empty database."""
    return Database()


@pytest.fixture
def people_db():
    """A small two-table database used across sqldb tests."""
    database = Database()
    database.execute_script("""
    CREATE TABLE person (id INT PRIMARY KEY, name TEXT NOT NULL, age INT,
                         city TEXT);
    CREATE TABLE pet (id INT PRIMARY KEY, owner_id INT, species TEXT);
    CREATE INDEX idx_pet_owner ON pet (owner_id)
    """)
    rows = [
        (1, "alice", 34, "boston"),
        (2, "bob", 28, "nyc"),
        (3, "carol", 41, "boston"),
        (4, "dave", None, "sf"),
    ]
    for row in rows:
        database.execute(
            "INSERT INTO person (id, name, age, city) VALUES (?, ?, ?, ?)",
            row)
    pets = [(10, 1, "cat"), (11, 1, "dog"), (12, 2, "cat"), (13, 3, "fish")]
    for pet in pets:
        database.execute(
            "INSERT INTO pet (id, owner_id, species) VALUES (?, ?, ?)", pet)
    return database


@pytest.fixture
def sim_stack(db):
    """(db, clock, server, driver, batch_driver) wired together."""
    cost_model = CostModel()
    clock = SimClock()
    server = DatabaseServer(db, cost_model)
    driver = Driver(server, clock, cost_model)
    batch_driver = BatchDriver(server, clock, cost_model)
    return db, clock, server, driver, batch_driver


@pytest.fixture(scope="session")
def itracker_app():
    from repro.apps import itracker

    return itracker.build_app()


@pytest.fixture(scope="session")
def openmrs_app():
    from repro.apps import openmrs

    return openmrs.build_app()
