from repro.bench.report import cdf, format_table, ratio_stats
from repro.bench.throughput import PageDemands, peak, throughput_curve


class TestReport:
    def test_cdf_monotone(self):
        points = cdf([3, 1, 2])
        assert points == [(1, 1 / 3), (2, 2 / 3), (3, 1.0)]

    def test_ratio_stats(self):
        stats = ratio_stats([1.0, 2.0, 9.0])
        assert stats == {"min": 1.0, "median": 2.0, "max": 9.0}

    def test_ratio_stats_empty(self):
        assert ratio_stats([])["median"] is None

    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [(1, 2.5), (10, 3.25)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "2.50" in text and "3.25" in text


class TestThroughputModel:
    def test_curve_rises_then_falls(self):
        demands = PageDemands(network_ms=8.0, app_ms=6.0, db_ms=2.0)
        curve = throughput_curve(demands, list(range(1, 200, 5)))
        values = [v for _, v in curve]
        peak_index = values.index(max(values))
        assert 0 < peak_index < len(values) - 1

    def test_lower_network_raises_early_throughput(self):
        slow = PageDemands(network_ms=10.0, app_ms=5.0, db_ms=2.0)
        fast = PageDemands(network_ms=3.0, app_ms=5.0, db_ms=2.0)
        slow_curve = throughput_curve(slow, [2])
        fast_curve = throughput_curve(fast, [2])
        assert fast_curve[0][1] > slow_curve[0][1]

    def test_peak_helper(self):
        assert peak([(1, 5.0), (2, 9.0), (3, 7.0)]) == (2, 9.0)


class TestExperimentShapes:
    def test_fig9_quick_single_app(self):
        from repro.apps import itracker
        from repro.bench.experiments import fig9_network

        result = fig9_network.run(latencies=(0.5, 10.0),
                                  apps=(("itracker", itracker),))
        medians = [result["itracker"][rtt]["speedup"]["median"]
                   for rtt in (0.5, 10.0)]
        assert medians[1] > medians[0]

    def test_fig11_counts_close_to_paper(self):
        from repro.bench.experiments import fig11_persistence

        result = fig11_persistence.run()
        assert abs(result["itracker"]["persistent"] - 2031) < 110
        assert abs(result["openmrs"]["persistent"] - 7616) < 390
