from repro.apps import tpcc, tpcw
from repro.bench.harness import (
    ASYNC_FLUSH_THRESHOLD, MODE_ASYNC, PageComparison, compare_pages,
    load_page, measure_tpc_overhead,
)
from repro.net.clock import CostModel
from repro.web.appserver import MODE_ORIGINAL, MODE_SLOTH


class TestPageComparison:
    def test_ratios(self, itracker_app):
        db, dispatcher = itracker_app
        comparisons = compare_pages(db, dispatcher, ["error.jsp"])
        c = comparisons[0]
        assert isinstance(c, PageComparison)
        assert c.speedup == c.original.time_ms / c.sloth.time_ms
        assert c.round_trip_ratio >= 1.0

    def test_load_page_params_forwarded(self, itracker_app):
        db, dispatcher = itracker_app
        result = load_page(db, dispatcher, "module-projects/view_issue.jsp",
                           CostModel(), MODE_ORIGINAL, params={"id": "9"})
        assert "#9" in result.html

    def test_async_mode_matches_sync_and_never_loses(self, itracker_app):
        db, dispatcher = itracker_app
        url = "portalhome.jsp"
        cm = CostModel(round_trip_ms=5.0)
        sync = load_page(db, dispatcher, url, cm, MODE_SLOTH,
                         auto_flush_threshold=ASYNC_FLUSH_THRESHOLD)
        asyn = load_page(db, dispatcher, url, cm, MODE_ASYNC)
        assert asyn.html == sync.html
        assert asyn.time_ms < sync.time_ms
        assert asyn.async_batches > 0
        assert asyn.overlap_ms > 0
        # Same batching decisions: identical queries in identical batches.
        assert asyn.queries_issued == sync.queries_issued
        assert asyn.round_trips == sync.round_trips

    def test_default_figure_path_stays_synchronous(self, itracker_app):
        # The cold-load figure methodology does not opt into async
        # dispatch: a plain sloth load reports no async activity.
        db, dispatcher = itracker_app
        result = load_page(db, dispatcher, "portalhome.jsp")
        assert result.async_batches == 0
        assert result.stall_ms == 0.0

    def test_latency_sensitivity(self, itracker_app):
        db, dispatcher = itracker_app
        url = "portalhome.jsp"
        fast = load_page(db, dispatcher, url, CostModel(round_trip_ms=0.1),
                         MODE_ORIGINAL)
        slow = load_page(db, dispatcher, url, CostModel(round_trip_ms=5.0),
                         MODE_ORIGINAL)
        assert slow.time_ms > fast.time_ms
        assert slow.round_trips == fast.round_trips


class TestTpcHarness:
    def test_tpcc_overhead_positive(self):
        schedule = [("payment", i) for i in range(10)]
        orig, sloth = measure_tpc_overhead(
            tpcc.seed, lambda client: tpcc.TpccRunner(client), schedule)
        assert sloth > orig > 0

    def test_tpcw_overhead_positive(self):
        schedule = [("shopping", i) for i in range(15)]
        orig, sloth = measure_tpc_overhead(
            tpcw.seed, lambda client: tpcw.TpcwRunner(client), schedule)
        assert sloth > orig > 0

    def test_fresh_databases_per_mode(self):
        # Running twice gives identical timings: no state leaks between
        # the original and Sloth runs.
        schedule = [("new_order", i) for i in range(5)]
        first = measure_tpc_overhead(
            tpcc.seed, lambda client: tpcc.TpccRunner(client), schedule)
        second = measure_tpc_overhead(
            tpcc.seed, lambda client: tpcc.TpccRunner(client), schedule)
        assert first == second
