import pytest

from repro.compiler import kernel as K
from repro.compiler.errors import KernelError, KernelParseError
from repro.compiler.lazy_interp import LazyInterpreter
from repro.compiler.optimize import OptimizationPlan
from repro.compiler.parser import parse_program
from repro.compiler.standard_interp import StandardInterpreter


def run_both(src, db=None, plan_flags=None):
    program = parse_program(src)
    std = StandardInterpreter(program, db).run()
    plan = None
    if plan_flags is not None:
        plan = OptimizationPlan(program, *plan_flags)
    lazy = LazyInterpreter(program, db, plan).run()
    return std, lazy


class TestStandardSemantics:
    def test_arithmetic_and_vars(self):
        std, _ = run_both("x := 2 + 3 * 4; y := x - 1;")
        assert std.env == {"x": 14, "y": 13}

    def test_while_loop(self):
        std, _ = run_both(
            "i := 0; s := 0; while (i < 5) { s := s + i; i := i + 1; }")
        assert std.env["s"] == 10

    def test_records_and_fields(self):
        std, _ = run_both("p := {x: 1, y: 2}; p.x := 5; v := p.x + p.y;")
        assert std.env["v"] == 7

    def test_reads_and_writes(self):
        std, _ = run_both("a := R(1); W(1); b := R(1); output a + b;",
                          db={1: 10})
        assert std.output == [21]
        assert std.round_trips == 3

    def test_function_call(self):
        std, _ = run_both(
            "fn double(v) { r := v * 2; return r; } x := double(21);")
        assert std.env["x"] == 42

    def test_unbound_variable_raises(self):
        with pytest.raises(KernelError):
            run_both("x := y;")

    def test_step_budget_stops_divergence(self):
        with pytest.raises(KernelError):
            run_both("while (true) { x := 1; }")

    def test_parse_error(self):
        with pytest.raises(KernelParseError):
            parse_program("x := ;")


class TestLazySemantics:
    def test_batching_reduces_round_trips(self):
        src = """
        a := R(1);
        b := R(2);
        c := R(3);
        output a + b + c;
        """
        std, lazy = run_both(src, db={1: 1, 2: 2, 3: 3})
        assert std.output == lazy.output == [6]
        assert std.round_trips == 3
        assert lazy.round_trips == 1
        assert lazy.store.largest_batch == 3

    def test_dependent_queries_force_sequentially(self):
        src = "a := R(1); b := R(a); output b;"
        std, lazy = run_both(src, db={1: 7, 7: 70})
        assert lazy.output == [70]
        assert lazy.round_trips == 2

    def test_unused_query_never_issued(self):
        from repro.compiler.parser import parse_program

        program = parse_program("a := R(1); b := 2; output b;")
        lazy = LazyInterpreter(program, {1: 5}).run(force_final=False)
        # The program never needed a's value: the query stayed pending.
        assert lazy.round_trips == 0
        assert lazy.store.queries_issued == 0
        assert lazy.output == [2]

    def test_write_ships_with_pending_reads(self):
        src = "a := R(1); W(5); output a;"
        std, lazy = run_both(src, db={1: 9})
        assert std.output == lazy.output == [9]
        assert std.round_trips == 2
        assert lazy.round_trips == 1  # read + write in one batch
        assert lazy.store.batches == [2]

    def test_reads_before_write_see_old_db(self):
        src = "a := R(1); W(1); b := R(1); output a; output b;"
        std, lazy = run_both(src, db={1: 3})
        assert std.output == lazy.output == [3, 4]

    def test_dedup_identical_reads(self):
        src = "a := R(1); b := R(1); output a + b;"
        _, lazy = run_both(src, db={1: 4})
        assert lazy.output == [8]
        assert lazy.store.dedup_hits == 1
        assert lazy.round_trips == 1

    def test_heap_writes_not_deferred(self):
        src = "p := {v: 0}; p.v := R(1); q := p.v; output q;"
        std, lazy = run_both(src, db={1: 6})
        assert std.output == lazy.output == [6]

    def test_branch_condition_forces_in_basic_mode(self):
        src = """
        a := R(1);
        if (a > 0) { x := 1; } else { x := 2; }
        b := R(2);
        output x; output b;
        """
        std, lazy = run_both(src, db={1: 1, 2: 9})
        # basic: condition forces a before b registers -> two batches
        assert lazy.round_trips == 2
        assert std.output == lazy.output


class TestOptimizations:
    def test_branch_deferral_merges_batches(self):
        src = """
        a := R(1);
        if (a > 0) { x := 1; } else { x := 2; }
        b := R(2);
        output x; output b;
        """
        _, basic = run_both(src, db={1: 1, 2: 9})
        _, optimized = run_both(src, db={1: 1, 2: 9},
                                plan_flags=(False, False, True))
        assert optimized.output == basic.output
        assert optimized.round_trips < basic.round_trips
        assert optimized.store.largest_batch == 2

    def test_coalescing_reduces_allocations(self):
        # Seed the chain with a query result so the arithmetic is genuinely
        # delayed (constants fold away without ever allocating a thunk).
        src = """
        a := R(1);
        b := a + 1;
        c := b + 1;
        d := c + 1;
        e := d * 2;
        output e;
        """
        _, basic = run_both(src, db={1: 1})
        _, coalesced = run_both(src, db={1: 1},
                                plan_flags=(False, True, False))
        assert coalesced.output == basic.output == [8]
        assert coalesced.thunks_allocated < basic.thunks_allocated

    def test_selective_compilation_skips_nonpersistent_fn(self):
        src = """
        fn fmt(v) { t := v + 1; u := t * 2; return u; }
        x := R(1);
        y := fmt(x);
        output y;
        """
        _, basic = run_both(src, db={1: 10})
        _, selective = run_both(src, db={1: 10},
                                plan_flags=(True, False, False))
        assert basic.output == selective.output == [22]

    def test_all_optimizations_preserve_results(self):
        src = """
        fn helper(v) { r := v + 100; return r; }
        a := R(1);
        b := R(2);
        if (a > b) { m := a; } else { m := b; }
        c := helper(m);
        W(c);
        d := R(c);
        output d;
        """
        db = {1: 5, 2: 7}
        std, lazy_all = run_both(src, db=db,
                                 plan_flags=(True, True, True))
        assert std.output == lazy_all.output
        assert std.db == lazy_all.db
        assert lazy_all.round_trips <= std.round_trips
