import pytest

from repro.compiler import kernel as K
from repro.compiler.errors import KernelParseError
from repro.compiler.parser import parse_program, parse_statement


class TestStatements:
    def test_assignment(self):
        stmt = K.statements_of(parse_statement("x := 1 + 2;"))[0]
        assert isinstance(stmt, K.Assign)
        assert stmt.expr == K.BinOp("+", K.Const(1), K.Const(2))

    def test_field_assignment(self):
        stmt = K.statements_of(parse_statement("p.f := 1;"))[0]
        assert isinstance(stmt.target, K.Field)

    def test_if_else_and_skip(self):
        stmt = K.statements_of(
            parse_statement("if (x > 0) { skip; } else { y := 1; }"))[0]
        assert isinstance(stmt, K.If)
        assert isinstance(K.statements_of(stmt.then)[0], K.Skip)

    def test_if_without_else(self):
        stmt = K.statements_of(parse_statement("if (x = 1) { y := 2; }"))[0]
        assert isinstance(stmt.orelse, K.Skip)

    def test_while(self):
        stmt = K.statements_of(
            parse_statement("while (i < 3) { i := i + 1; }"))[0]
        assert isinstance(stmt, K.While)

    def test_write_and_output(self):
        stmts = K.statements_of(parse_statement("W(1); output x;"))
        assert isinstance(stmts[0], K.WriteQuery)
        assert isinstance(stmts[1], K.Output)

    def test_comments_ignored(self):
        stmt = parse_statement("# a comment\nx := 1; # trailing\n")
        assert len(K.statements_of(stmt)) == 1


class TestExpressions:
    def test_precedence(self):
        stmt = K.statements_of(parse_statement("x := 1 + 2 * 3;"))[0]
        assert stmt.expr.op == "+"
        assert stmt.expr.right.op == "*"

    def test_boolean_operators(self):
        stmt = K.statements_of(
            parse_statement("x := a and b or not c;"))[0]
        assert stmt.expr.op == "or"
        assert stmt.expr.left.op == "and"
        assert stmt.expr.right.op == "not"

    def test_record_and_index(self):
        stmt = K.statements_of(
            parse_statement("x := {a: 1, b: 2}; y := x[0];"))
        assert isinstance(stmt[0].expr, K.Record)
        assert isinstance(stmt[1].expr, K.Index)

    def test_read_query(self):
        stmt = K.statements_of(parse_statement("x := R(1 + 2);"))[0]
        assert isinstance(stmt.expr, K.Read)

    def test_unary_minus(self):
        stmt = K.statements_of(parse_statement("x := -5;"))[0]
        assert stmt.expr == K.UnOp("-", K.Const(5))

    def test_parenthesized(self):
        stmt = K.statements_of(parse_statement("x := (1 + 2) * 3;"))[0]
        assert stmt.expr.op == "*"


class TestFunctions:
    def test_function_definition(self):
        prog = parse_program(
            "fn add(a, b) { s := a + b; return s; } x := add(1, 2);")
        fn = prog.function("add")
        assert fn.params == ["a", "b"]
        assert fn.kind == K.IMPURE  # declared internal; analysis refines

    def test_external_function(self):
        prog = parse_program("external log(x) { return x; } y := log(1);")
        assert prog.function("log").kind == K.EXTERNAL

    def test_zero_arg_function(self):
        prog = parse_program("fn zero() { return 0; } x := zero();")
        assert prog.function("zero").params == []

    def test_undefined_function_raises_at_runtime(self):
        from repro.compiler.errors import KernelError
        from repro.compiler.standard_interp import StandardInterpreter

        prog = parse_program("x := nope(1);")
        with pytest.raises(KernelError):
            StandardInterpreter(prog).run()


class TestErrors:
    @pytest.mark.parametrize("src", [
        "x := ;",
        "if x > 0 { y := 1; }",  # missing parens
        "x := 1",  # missing semicolon
        "output",
        "fn f( { return 1; }",
    ])
    def test_malformed_raises(self, src):
        with pytest.raises(KernelParseError):
            parse_program(src)
