"""Property-based test of the paper's soundness theorem.

For randomly generated kernel programs, running under standard semantics
and extended lazy semantics (with and without §4 optimizations) must yield
identical final environments, databases and output traces once every thunk
is forced — and the lazy run must never use *more* database round trips.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import kernel as K
from repro.compiler.lazy_interp import LazyInterpreter
from repro.compiler.optimize import OptimizationPlan
from repro.compiler.standard_interp import StandardInterpreter

VARS = ("a", "b", "c", "d")


def exprs(depth):
    """Expressions over pre-bound variables a-d (always defined)."""
    leaf = st.one_of(
        st.integers(min_value=0, max_value=9).map(K.Const),
        st.sampled_from(VARS).map(K.Var),
    )
    if depth == 0:
        return leaf
    sub = exprs(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(("+", "-", "*")), sub, sub).map(
            lambda t: K.BinOp(t[0], t[1], t[2])),
        sub.map(lambda e: K.Read(e)),
    )


def conditions():
    return st.tuples(
        st.sampled_from(("<", ">", "=")),
        st.sampled_from(VARS).map(K.Var),
        st.integers(min_value=0, max_value=9).map(K.Const),
    ).map(lambda t: K.BinOp(t[0], t[1], t[2]))


def statements(depth):
    assign = st.tuples(st.sampled_from(VARS), exprs(2)).map(
        lambda t: K.Assign(K.Var(t[0]), t[1]))
    write = exprs(1).map(K.WriteQuery)
    output = exprs(1).map(K.Output)
    base = st.one_of(assign, assign, assign, write, output)
    if depth == 0:
        return base
    sub = statements(depth - 1)
    branch = st.tuples(conditions(),
                       st.lists(sub, min_size=1, max_size=3),
                       st.lists(sub, min_size=0, max_size=2)).map(
        lambda t: K.If(t[0], K.Seq(t[1]), K.Seq(t[2])))
    return st.one_of(base, base, branch)


programs = st.lists(statements(2), min_size=1, max_size=12).map(
    lambda stmts: K.Program(K.Seq(stmts)))

initial_dbs = st.dictionaries(
    st.integers(min_value=0, max_value=9),
    st.integers(min_value=0, max_value=9),
    max_size=6)

ENV0 = {"a": 1, "b": 2, "c": 3, "d": 4}


def check_equivalent(program, db, plan):
    std = StandardInterpreter(program, db).run(dict(ENV0))
    lazy = LazyInterpreter(program, db, plan).run(dict(ENV0))
    assert lazy.env == std.env
    assert lazy.db == std.db
    assert lazy.output == std.output
    assert lazy.round_trips <= std.round_trips
    return std, lazy


@given(programs, initial_dbs)
@settings(max_examples=120, deadline=None)
def test_basic_lazy_equals_standard(program, db):
    check_equivalent(program, db, None)


@given(programs, initial_dbs)
@settings(max_examples=120, deadline=None)
def test_optimized_lazy_equals_standard(program, db):
    plan = OptimizationPlan(program, selective_compilation=True,
                            thunk_coalescing=True, branch_deferral=True)
    check_equivalent(program, db, plan)


@given(programs, initial_dbs)
@settings(max_examples=60, deadline=None)
def test_optimizations_never_increase_round_trips_vs_basic(program, db):
    basic = LazyInterpreter(program, db, None).run(dict(ENV0))
    plan = OptimizationPlan(program, True, True, True)
    optimized = LazyInterpreter(program, db, plan).run(dict(ENV0))
    assert optimized.env == basic.env
    assert optimized.db == basic.db
    assert optimized.round_trips <= basic.round_trips


@given(programs, initial_dbs)
@settings(max_examples=60, deadline=None)
def test_coalescing_never_increases_allocations(program, db):
    basic = LazyInterpreter(program, db, None).run(dict(ENV0))
    plan = OptimizationPlan(program, thunk_coalescing=True)
    coalesced = LazyInterpreter(program, db, plan).run(dict(ENV0))
    assert coalesced.env == basic.env
    assert coalesced.thunks_allocated <= basic.thunks_allocated
