from repro.compiler import kernel as K
from repro.compiler.analysis import (
    classify_functions, deferrable_branches, effective_kind, liveness,
    persistent_functions, stmt_uses_defs,
)
from repro.compiler.optimize import CoalesceGroup, coalesce_plan
from repro.compiler.parser import parse_program


class TestEffects:
    def test_pure_function(self):
        prog = parse_program("fn f(x) { y := x + 1; return y; } a := f(1);")
        effects = classify_functions(prog)["f"]
        assert not effects.has_external_effects
        assert not effects.touches_database
        assert effective_kind(prog.function("f"), effects and
                              classify_functions(prog)) == K.PURE

    def test_query_function_is_not_deferred_whole(self):
        prog = parse_program("fn f(x) { y := R(x); return y; } a := f(1);")
        summaries = classify_functions(prog)
        assert summaries["f"].reads
        assert effective_kind(prog.function("f"), summaries) == K.IMPURE

    def test_write_function(self):
        prog = parse_program("fn f(x) { W(x); return 0; } a := f(1);")
        summaries = classify_functions(prog)
        assert summaries["f"].writes

    def test_transitive_propagation(self):
        prog = parse_program("""
        fn leaf(x) { y := R(x); return y; }
        fn mid(x) { y := leaf(x); return y; }
        fn top(x) { y := mid(x); return y; }
        a := top(1);
        """)
        summaries = classify_functions(prog)
        assert summaries["top"].reads

    def test_external_assumed_effectful(self):
        prog = parse_program(
            "external f(x) { return x; } a := f(1);")
        summaries = classify_functions(prog)
        assert summaries["f"].has_external_effects


class TestPersistence:
    def test_leaves_and_closure(self):
        graph = {
            "dao": [],
            "service": ["dao"],
            "controller": ["service", "fmt"],
            "fmt": [],
        }
        persistent = persistent_functions(graph, {"dao"})
        assert persistent == {"dao", "service", "controller"}

    def test_cycle_handling(self):
        graph = {"a": ["b"], "b": ["a"], "c": []}
        assert persistent_functions(graph, {"a"}) == {"a", "b"}

    def test_no_leaves(self):
        assert persistent_functions({"a": ["b"], "b": []}, set()) == set()


class TestLiveness:
    def test_backwards_liveness(self):
        prog = parse_program("a := 1; b := a + 1; c := b + 1; output c;")
        stmts = K.statements_of(prog.main)
        live = liveness(stmts)
        # after `a := 1`, a is live (used by next stmt)
        assert "a" in live[0]
        # after `c := b + 1`, only c is live
        assert live[2] == {"c"}
        # after output, nothing is live
        assert live[3] == set()

    def test_uses_defs(self):
        stmt = K.statements_of(parse_program("x := y + z;").main)[0]
        uses, defs = stmt_uses_defs(stmt)
        assert uses == {"y", "z"}
        assert defs == {"x"}


class TestBranchDeferral:
    def test_pure_branch_is_deferrable(self):
        prog = parse_program(
            "a := 1; if (a > 0) { x := 1; } else { x := 2; }")
        summaries = classify_functions(prog)
        assert len(deferrable_branches(prog, summaries)) == 1

    def test_branch_with_query_not_deferrable(self):
        prog = parse_program(
            "a := 1; if (a > 0) { x := R(1); } else { x := 2; }")
        summaries = classify_functions(prog)
        assert len(deferrable_branches(prog, summaries)) == 0

    def test_branch_with_output_not_deferrable(self):
        prog = parse_program(
            "a := 1; if (a > 0) { output a; } else { skip; }")
        summaries = classify_functions(prog)
        assert len(deferrable_branches(prog, summaries)) == 0


class TestCoalescing:
    def test_consecutive_assigns_grouped_dead_temps_dropped(self):
        prog = parse_program(
            "a := 1; b := a + 1; c := b + 1; output c;")
        summaries = classify_functions(prog)
        plan = coalesce_plan(prog.main, summaries)
        groups = [item for item in plan
                  if isinstance(item, CoalesceGroup)]
        assert len(groups) == 1
        assert groups[0].outputs == {"c"}  # a, b are dead after the run

    def test_query_statement_breaks_run(self):
        prog = parse_program("a := 1; b := R(1); c := 2; d := c + 1;")
        summaries = classify_functions(prog)
        plan = coalesce_plan(prog.main, summaries)
        groups = [item for item in plan if isinstance(item, CoalesceGroup)]
        # only the trailing c;d pair coalesces
        assert len(groups) == 1
        assert len(groups[0].stmts) == 2

    def test_singletons_not_grouped(self):
        prog = parse_program("a := 1; output a; b := 2; output b;")
        summaries = classify_functions(prog)
        plan = coalesce_plan(prog.main, summaries)
        assert not any(isinstance(item, CoalesceGroup) for item in plan)

    def test_live_out_respected(self):
        prog = parse_program("a := 1; b := 2;")
        summaries = classify_functions(prog)
        plan = coalesce_plan(prog.main, summaries, live_out={"a", "b"})
        group = plan[0]
        assert isinstance(group, CoalesceGroup)
        assert group.outputs == {"a", "b"}
