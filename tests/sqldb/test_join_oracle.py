"""Differential join oracle.

Hypothesis generates 2–3 table schemas, data (with NULL join keys and NULL
range columns), hash *and* ordered secondary indexes, and join queries
(INNER/LEFT, equality and range predicates — one-sided comparisons and
BETWEEN with possibly crossed bounds — plus ORDER BY), then executes each
query three ways:

1. through the full cost-based pipeline (reordering + index nested-loop
   joins + ordered-index range scans + sort elision — the default),
2. through the pipeline pinned to FROM order with sequential scans under
   joins and no ordered access paths (``FROM_ORDER_OPTIONS`` — PR-1
   behaviour),
3. through a brute-force nested-loop **reference evaluator** implemented
   below, independent of the planner/optimizer/physical operators (it
   shares only the parser and the expression evaluator).

The oracle asserts byte-identical result multisets across all three, that
both pipelines' outputs respect the generated ORDER BY (NULLs first
ascending / last descending — the contract an elided sort must uphold),
and that the optimized execution never touches more storage rows than
FROM-order execution — the adaptivity contract of the index nested-loop
join, the safety contract of join reordering, and the superset contract of
range scans.

Every case additionally runs under **both physical engines**
(``Database(engine="row")`` — the interpreted row-at-a-time shim — and
``engine="batch"`` — chunked pull through compiled expressions) and the
two executions must agree *exactly*: byte-identical rows in identical
order and identical ``rows_touched``.  This is the differential contract
of the vectorized engine — not a multiset comparison, because the engines
share the plan and so must also agree on ordering.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqldb import Database
from repro.sqldb.expressions import RowContext, evaluate
from repro.sqldb.parser import parse
from repro.sqldb.plan import FROM_ORDER_OPTIONS

# ---------------------------------------------------------------------------
# Reference evaluator (brute force, FROM order, no optimization)
# ---------------------------------------------------------------------------


def reference_eval(tables, sql, params=()):
    """Evaluate a SELECT over ``tables`` (name -> (columns, rows)) by plain
    nested loops in FROM order; returns a list of result tuples.

    Supports the oracle's query shape: column select list, INNER/LEFT
    joins with arbitrary ON conditions, WHERE.  SQL semantics (three-valued
    logic, NULL never matching) come from ``evaluate``.
    """
    stmt = parse(sql)
    refs = [stmt.table] + [j.table for j in stmt.joins]
    positions = {}
    offsets = []
    offset = 0
    for ref in refs:
        columns, _ = tables[ref.name]
        offsets.append(offset)
        for i, col in enumerate(columns):
            positions[(ref.alias, col)] = offset + i
            positions[(None, col)] = offset + i
        offset += len(columns)
    ctx = RowContext(positions)

    def padded(ref, index):
        columns, rows = tables[ref.name]
        width = len(columns)
        for row in rows:
            values = [None] * offset
            values[offsets[index]:offsets[index] + width] = row
            yield values

    current = list(padded(refs[0], 0))
    for index, join in enumerate(stmt.joins, start=1):
        columns, rows = tables[join.table.name]
        width = len(columns)
        joined = []
        for left in current:
            matched = False
            for row in rows:
                merged = list(left)
                merged[offsets[index]:offsets[index] + width] = row
                ctx.bind(merged)
                if evaluate(join.condition, ctx, params) is True:
                    joined.append(merged)
                    matched = True
            if not matched and join.kind == "LEFT":
                joined.append(list(left))
        current = joined
    if stmt.where is not None:
        kept = []
        for values in current:
            ctx.bind(values)
            if evaluate(stmt.where, ctx, params) is True:
                kept.append(values)
        current = kept
    out = []
    for values in current:
        ctx.bind(values)
        out.append(tuple(
            evaluate(item.expr, ctx, params) for item in stmt.items))
    return out


def canon(rows):
    """Canonical multiset form: sorted by repr (total order over int/None)."""
    return sorted([tuple(row) for row in rows], key=repr)


# ---------------------------------------------------------------------------
# Case generation
# ---------------------------------------------------------------------------

_VALUES = st.one_of(st.none(), st.integers(min_value=0, max_value=4))
_TABLE_ROWS = st.lists(st.tuples(_VALUES, _VALUES), min_size=0, max_size=10)


@st.composite
def join_cases(draw):
    n_tables = draw(st.integers(min_value=2, max_value=3))
    tables = []
    for i in range(n_tables):
        rows = draw(_TABLE_ROWS)
        index_method = draw(st.sampled_from([None, "hash", "ordered"]))
        tables.append((rows, index_method))

    joins = []
    for i in range(1, n_tables):
        kind = draw(st.sampled_from(["JOIN", "LEFT JOIN"]))
        j = draw(st.integers(min_value=0, max_value=i - 1))
        left_col = draw(st.sampled_from([f"a{j}", f"b{j}", f"c{j}"]))
        shape = draw(st.sampled_from(["eq", "eq+extra", "range"]))
        if shape == "eq":
            cond = f"t{i}.b{i} = t{j}.{left_col}"
        elif shape == "eq+extra":
            lit = draw(st.integers(min_value=0, max_value=4))
            extra = draw(st.sampled_from(
                [f"t{i}.c{i} = {lit}", f"t{i}.c{i} > {lit}",
                 f"t{j}.{left_col} <= {lit}"]))
            cond = f"t{i}.b{i} = t{j}.{left_col} AND {extra}"
        else:
            cond = f"t{i}.b{i} < t{j}.{left_col}"
        joins.append(f"{kind} t{i} ON {cond}")

    where_parts = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        t = draw(st.integers(min_value=0, max_value=n_tables - 1))
        col = draw(st.sampled_from([f"a{t}", f"b{t}", f"c{t}"]))
        shape = draw(st.sampled_from(["cmp", "cmp", "between"]))
        if shape == "between":
            # Bounds drawn independently, so low > high (an empty range)
            # and low == high both occur.
            low = draw(st.integers(min_value=0, max_value=4))
            high = draw(st.integers(min_value=0, max_value=4))
            where_parts.append(f"t{t}.{col} BETWEEN {low} AND {high}")
        else:
            lit = draw(st.integers(min_value=0, max_value=4))
            op = draw(st.sampled_from(["=", "<", "<=", ">", ">=", "<>"]))
            where_parts.append(f"t{t}.{col} {op} {lit}")

    order_items = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        t = draw(st.integers(min_value=0, max_value=n_tables - 1))
        col = draw(st.sampled_from([f"a{t}", f"b{t}"]))  # in the select list
        direction = draw(st.sampled_from(["ASC", "DESC"]))
        order_items.append((t, col, direction))

    items = ", ".join(
        f"t{i}.a{i}, t{i}.b{i}" for i in range(n_tables))
    sql = f"SELECT {items} FROM t0 " + " ".join(joins)
    if where_parts:
        sql += " WHERE " + " AND ".join(where_parts)
    if order_items:
        sql += " ORDER BY " + ", ".join(
            f"t{t}.{col} {direction}" for t, col, direction in order_items)
    return tables, sql, order_items


def build_db(tables, options=None, engine="batch"):
    db = Database(optimizer_options=options, engine=engine)
    for i, (rows, index_method) in enumerate(tables):
        db.execute(f"CREATE TABLE t{i} (a{i} INT PRIMARY KEY, "
                   f"b{i} INT, c{i} INT)")
        if index_method == "hash":
            db.execute(f"CREATE INDEX idx_t{i}_b ON t{i} (b{i})")
        elif index_method == "ordered":
            db.execute(f"CREATE INDEX idx_t{i}_b ON t{i} (b{i}) "
                       "USING ORDERED")
        for pk, (b, c) in enumerate(rows):
            db.execute(f"INSERT INTO t{i} (a{i}, b{i}, c{i}) "
                       "VALUES (?, ?, ?)", (pk, b, c))
    return db


def _order_key_positions(order_items):
    """Output positions of the ORDER BY keys (the select list is
    ``t0.a0, t0.b0, t1.a1, ...`` so ``tK.aK`` sits at 2K, ``tK.bK`` at
    2K+1)."""
    positions = []
    for t, col, direction in order_items:
        positions.append((2 * t + (1 if col.startswith("b") else 0),
                          direction == "DESC"))
    return positions


def assert_ordered(rows, order_items):
    """Every adjacent pair respects the ORDER BY keys with the engine's
    NULL placement (first ascending, last descending)."""
    def rank(row):
        key = []
        for pos, descending in _order_key_positions(order_items):
            value = row[pos]
            if descending:
                key.append((value is None, -value if value is not None
                            else 0))
            else:
                key.append((value is not None, value if value is not None
                            else 0))
        return key

    ranks = [rank(row) for row in rows]
    assert all(a <= b for a, b in zip(ranks, ranks[1:]))


def reference_tables(tables):
    out = {}
    for i, (rows, _) in enumerate(tables):
        columns = [f"a{i}", f"b{i}", f"c{i}"]
        out[f"t{i}"] = (columns, [(pk, b, c)
                                  for pk, (b, c) in enumerate(rows)])
    return out


def assert_engines_agree(tables, sql, params=(), options=None):
    """Execute under all three physical engines and require *exact*
    agreement: identical rows in identical order and identical
    ``rows_touched``.  Returns the batch execution so callers don't run
    it twice."""
    batch = build_db(tables, options, engine="batch").execute(sql, params)
    for engine in ("columnar", "row"):
        other = build_db(tables, options, engine=engine).execute(sql, params)
        assert other.rows == batch.rows, engine
        assert other.columns == batch.columns, engine
        assert other.rows_touched == batch.rows_touched, engine
    return batch


# The reference evaluator ignores ORDER BY (it compares multisets), so the
# ordering contract is asserted separately via assert_ordered.


# ---------------------------------------------------------------------------
# The oracle
# ---------------------------------------------------------------------------


@given(join_cases())
@settings(max_examples=220, deadline=None)
def test_differential_join_oracle(case):
    """Optimized == FROM-order == brute-force reference, both pipelines
    honor the ORDER BY, the optimized plan never touches more rows than
    FROM-order execution, and each pipeline agrees exactly with itself
    under the row engine."""
    tables, sql, order_items = case
    optimized = assert_engines_agree(tables, sql)
    from_order = assert_engines_agree(tables, sql,
                                      options=FROM_ORDER_OPTIONS)
    reference = reference_eval(reference_tables(tables), sql)

    assert canon(optimized.rows) == canon(reference)
    assert canon(from_order.rows) == canon(reference)
    assert optimized.columns == from_order.columns
    assert optimized.rows_touched <= from_order.rows_touched
    if order_items:
        assert_ordered(optimized.rows, order_items)
        assert_ordered(from_order.rows, order_items)


@given(join_cases(), st.integers(min_value=0, max_value=4))
@settings(max_examples=60, deadline=None)
def test_oracle_with_parameters(case, needle):
    """Parameterized WHERE over the generated join keeps all three
    executions in agreement (plans are cached per statement; key values
    resolve at execution time)."""
    tables, sql, order_items = case
    where, sep, order_by = sql.partition(" ORDER BY ")
    where += (" AND" if "WHERE" in where else " WHERE") + " t0.b0 = ?"
    sql = where + sep + order_by
    optimized = assert_engines_agree(tables, sql, (needle,))
    from_order = build_db(tables, FROM_ORDER_OPTIONS).execute(sql, (needle,))
    reference = reference_eval(reference_tables(tables), sql, (needle,))

    assert canon(optimized.rows) == canon(reference)
    assert canon(from_order.rows) == canon(reference)
    assert optimized.rows_touched <= from_order.rows_touched
    if order_items:
        assert_ordered(optimized.rows, order_items)


@given(join_cases(), st.integers(min_value=0, max_value=4),
       st.integers(min_value=0, max_value=4))
@settings(max_examples=60, deadline=None)
def test_oracle_with_parameterized_range(case, low, high):
    """A parameterized BETWEEN (bounds drawn independently, so crossed
    low > high ranges occur) keeps all three executions in agreement and
    the range scan inside the FROM-order rows-touched envelope."""
    tables, sql, order_items = case
    where, sep, order_by = sql.partition(" ORDER BY ")
    where += ((" AND" if "WHERE" in where else " WHERE")
              + " t0.b0 BETWEEN ? AND ?")
    sql = where + sep + order_by
    params = (low, high)
    optimized = assert_engines_agree(tables, sql, params)
    from_order = build_db(tables, FROM_ORDER_OPTIONS).execute(sql, params)
    reference = reference_eval(reference_tables(tables), sql, params)

    assert canon(optimized.rows) == canon(reference)
    assert canon(from_order.rows) == canon(reference)
    assert optimized.rows_touched <= from_order.rows_touched
    if order_items:
        assert_ordered(optimized.rows, order_items)
