"""Cross-request result cache: hits, versioned invalidation, transactions.

Covers the whole vertical: table write versions in storage (auto-commit
and COMMIT bumps, rollback neutrality), the per-database
:class:`repro.sqldb.result_cache.ResultCache` (keying, LRU bound, stats
counters, ``EXPLAIN`` status line), invalidation by committed writes and
DDL, the transaction bypass (no stale hits, no spurious bumps, nothing
cached from uncommitted state), the server batch paths (cached members
drop out of shared-scan groups), hot repeated page loads through the app
server in both modes, and a seeded differential oracle interleaving
writer/reader sessions against a cache-disabled twin.
"""

import random

import pytest

from repro.net.clock import CostModel, SimClock
from repro.net.driver import BatchDriver, Driver
from repro.net.server import DatabaseServer
from repro.sqldb import Database


@pytest.fixture
def cached_db():
    db = Database()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    db.execute("CREATE TABLE u (id INT PRIMARY KEY, w INT)")
    for i in range(20):
        db.execute("INSERT INTO t (id, v) VALUES (?, ?)", (i, i * 2))
        db.execute("INSERT INTO u (id, w) VALUES (?, ?)", (i, i * 3))
    return db


class TestWriteVersions:
    def test_autocommit_bumps_per_statement(self, cached_db):
        table = cached_db.tables["t"]
        before = table.write_version
        cached_db.execute("UPDATE t SET v = 1 WHERE id = 1")
        assert table.write_version == before + 1

    def test_commit_bumps_once_per_table(self, cached_db):
        t, u = cached_db.tables["t"], cached_db.tables["u"]
        t_before, u_before = t.write_version, u.write_version
        cached_db.execute("BEGIN")
        cached_db.execute("UPDATE t SET v = 1 WHERE id = 1")
        cached_db.execute("UPDATE t SET v = 2 WHERE id = 2")
        cached_db.execute("DELETE FROM t WHERE id = 3")
        # No bump until COMMIT.
        assert t.write_version == t_before
        cached_db.execute("COMMIT")
        assert t.write_version == t_before + 1
        assert u.write_version == u_before  # untouched table

    def test_rollback_never_bumps(self, cached_db):
        table = cached_db.tables["t"]
        before = table.write_version
        cached_db.execute("BEGIN")
        cached_db.execute("UPDATE t SET v = 1 WHERE id = 1")
        cached_db.execute("INSERT INTO t (id, v) VALUES (100, 0)")
        cached_db.execute("ROLLBACK")
        assert table.write_version == before
        # ...and the data really was restored.
        rows = cached_db.query("SELECT v FROM t WHERE id = 1")
        assert rows == [{"v": 2}]

    def test_empty_transaction_commit_bumps_nothing(self, cached_db):
        before = cached_db.tables["t"].write_version
        cached_db.execute("BEGIN")
        cached_db.execute("COMMIT")
        assert cached_db.tables["t"].write_version == before


class TestCacheHits:
    SQL = "SELECT v FROM t WHERE id = ?"

    def test_second_execution_hits(self, cached_db):
        first = cached_db.execute(self.SQL, (3,))
        built = cached_db.executor.plans_built
        second = cached_db.execute(self.SQL, (3,))
        assert second.rows == first.rows
        assert second.columns == first.columns
        assert second.rowcount == first.rowcount
        assert second.rows_touched == 0
        assert cached_db.executor.plans_built == built  # no plan build
        stats = cached_db.result_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_parameters_key_distinct_entries(self, cached_db):
        cached_db.execute(self.SQL, (3,))
        other = cached_db.execute(self.SQL, (4,))
        assert other.rows == [(8,)]
        assert other.rows_touched == 1  # different params: a real execution
        assert cached_db.result_cache_stats()["hits"] == 0

    def test_hit_returns_fresh_result_object(self, cached_db):
        first = cached_db.execute(self.SQL, (3,))
        first.rows.append(("tampered",))  # caller mutates its copy
        second = cached_db.execute(self.SQL, (3,))
        assert second.rows == [(6,)]

    def test_disabled_cache_never_hits(self):
        db = Database(result_cache_size=0)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        db.execute("INSERT INTO t (id, v) VALUES (1, 2)")
        db.execute("SELECT v FROM t WHERE id = 1")
        result = db.execute("SELECT v FROM t WHERE id = 1")
        assert result.rows_touched == 1
        stats = db.result_cache_stats()
        assert stats["hits"] == 0 and stats["size"] == 0
        assert not stats["enabled"]

    def test_lru_bound_evicts_oldest(self, cached_db):
        cached_db.result_cache.limit = 4
        for i in range(6):
            cached_db.execute(self.SQL, (i,))
        assert len(cached_db.result_cache) == 4
        # The oldest entries fell out; the newest still hit.
        assert cached_db.execute(self.SQL, (5,)).rows_touched == 0
        assert cached_db.execute(self.SQL, (0,)).rows_touched == 1

    def test_explain_reports_cache_status(self, cached_db):
        plan = cached_db.explain(self.SQL, params=(3,))
        assert "ResultCache [status='miss'" in plan
        cached_db.execute(self.SQL, (3,))
        plan = cached_db.explain(self.SQL, params=(3,))
        assert "ResultCache [status='hit'" in plan
        # The peek is side-effect free.
        assert cached_db.result_cache_stats()["hits"] == 0
        # Without params, the plan tree is unchanged from the classic form.
        assert "ResultCache" not in cached_db.explain(self.SQL)

    def test_unhashable_params_bypass(self, cached_db):
        # Defensive: an unhashable parameter value cannot key an entry.
        result = cached_db.executor.cached_select(
            __import__("repro.sqldb.parser", fromlist=["parse"]).parse(
                self.SQL), ([1],))
        assert result is None


class TestInvalidation:
    def test_committed_write_invalidates_exactly_dependents(self, cached_db):
        cached_db.execute("SELECT v FROM t WHERE id = ?", (3,))
        cached_db.execute("SELECT w FROM u WHERE id = ?", (3,))
        cached_db.execute("UPDATE t SET v = 99 WHERE id = 3")
        fresh = cached_db.execute("SELECT v FROM t WHERE id = ?", (3,))
        assert fresh.rows == [(99,)]        # new data, really re-executed
        assert fresh.rows_touched == 1
        other = cached_db.execute("SELECT w FROM u WHERE id = ?", (3,))
        assert other.rows_touched == 0      # the u entry survived
        stats = cached_db.result_cache_stats()
        assert stats["invalidations"] == 1
        assert stats["hits"] == 1

    def test_join_entry_depends_on_both_tables(self, cached_db):
        sql = ("SELECT t.v, u.w FROM t JOIN u ON u.id = t.id "
               "WHERE t.id = ?")
        cached_db.execute(sql, (3,))
        assert cached_db.execute(sql, (3,)).rows_touched == 0
        cached_db.execute("UPDATE u SET w = 0 WHERE id = 3")
        refreshed = cached_db.execute(sql, (3,))
        assert refreshed.rows_touched > 0
        assert refreshed.rows == [(6, 0)]

    def test_ddl_changes_the_key(self, cached_db):
        sql = "SELECT v FROM t WHERE v = ?"
        cached_db.execute(sql, (6,))
        cached_db.execute("CREATE INDEX idx_t_v ON t (v)")
        # New catalog version: the old entry is unreachable, the statement
        # re-plans and re-executes (now through the index).
        result = cached_db.execute(sql, (6,))
        assert result.rows_touched == 1

    def test_truncate_invalidates_via_stats_epoch(self, cached_db):
        sql = "SELECT COUNT(*) AS n FROM t"
        assert cached_db.execute(sql).scalar() == 20
        cached_db.execute("TRUNCATE t")
        assert cached_db.execute(sql).scalar() == 0

    def test_insert_and_delete_invalidate(self, cached_db):
        sql = "SELECT COUNT(*) AS n FROM t"
        assert cached_db.execute(sql).scalar() == 20
        cached_db.execute("INSERT INTO t (id, v) VALUES (100, 1)")
        assert cached_db.execute(sql).scalar() == 21
        cached_db.execute("DELETE FROM t WHERE id = 100")
        assert cached_db.execute(sql).scalar() == 20


class TestTransactions:
    SQL = "SELECT v FROM t WHERE id = ?"

    def test_no_stale_hit_inside_transaction(self, cached_db):
        cached_db.execute(self.SQL, (1,))  # cached pre-transaction
        cached_db.execute("BEGIN")
        cached_db.execute("UPDATE t SET v = 77 WHERE id = 1")
        inside = cached_db.execute(self.SQL, (1,))
        assert inside.rows == [(77,)]  # sees its own uncommitted write
        cached_db.execute("COMMIT")
        after = cached_db.execute(self.SQL, (1,))
        assert after.rows == [(77,)]

    def test_uncommitted_rows_never_cached(self, cached_db):
        cached_db.execute("BEGIN")
        cached_db.execute("UPDATE t SET v = 77 WHERE id = 1")
        cached_db.execute(self.SQL, (1,))  # reads uncommitted state
        cached_db.execute("ROLLBACK")
        restored = cached_db.execute(self.SQL, (1,))
        assert restored.rows == [(2,)]  # not the in-flight 77

    def test_rolled_back_write_preserves_entries(self, cached_db):
        cached_db.execute(self.SQL, (1,))
        cached_db.execute("BEGIN")
        cached_db.execute("UPDATE t SET v = 77 WHERE id = 1")
        cached_db.execute("ROLLBACK")
        # The pre-transaction entry is still valid: same committed data,
        # same versions — a hit, not an invalidation.
        result = cached_db.execute(self.SQL, (1,))
        assert result.rows == [(2,)] and result.rows_touched == 0
        assert cached_db.result_cache_stats()["invalidations"] == 0

    def test_clean_tables_still_cache_during_transaction(self, cached_db):
        cached_db.execute("BEGIN")
        cached_db.execute("UPDATE t SET v = 77 WHERE id = 1")
        cached_db.execute("SELECT w FROM u WHERE id = ?", (2,))
        hit = cached_db.execute("SELECT w FROM u WHERE id = ?", (2,))
        assert hit.rows_touched == 0  # u has no pending writes
        cached_db.execute("ROLLBACK")

    def test_commit_invalidates_pre_transaction_entries(self, cached_db):
        cached_db.execute(self.SQL, (1,))
        cached_db.execute("BEGIN")
        cached_db.execute("UPDATE t SET v = 77 WHERE id = 1")
        cached_db.execute("COMMIT")
        result = cached_db.execute(self.SQL, (1,))
        assert result.rows == [(77,)]
        assert result.rows_touched > 0
        assert cached_db.result_cache_stats()["invalidations"] == 1


class TestStoreValidateRace:
    """A commit landing between execution and store must refuse the store.

    The executor snapshots referenced-table write versions *before*
    executing; the cache re-validates at store time.  Rows computed
    concurrently with another request's commit can therefore never be
    cached against the post-commit versions (where a later lookup would
    wrongly serve them as current).
    """

    SQL = "SELECT v FROM t WHERE id = ?"

    def test_stale_expected_versions_refuse_the_store(self, cached_db):
        from repro.sqldb.parser import parse

        stmt = parse(self.SQL)
        executor = cached_db.executor
        plan = executor.plan_for(stmt)
        # Simulate: execution started (versions snapshotted, rows read)...
        expected = cached_db.result_cache.version_snapshot(
            cached_db, plan.referenced_tables)
        result = plan.execute(cached_db, (1,))
        # ...then another request's commit lands before the store.
        cached_db.execute("UPDATE t SET v = 999 WHERE id = 1")
        executor.store_select(stmt, (1,), plan, result,
                              expected_versions=expected)
        assert cached_db.result_cache.rejected_stores == 1
        # The stale rows were not cached: the next read re-executes and
        # sees the committed value.
        after = cached_db.execute(self.SQL, (1,))
        assert after.rows == [(999,)] and after.rows_touched > 0

    def test_matching_versions_store_normally(self, cached_db):
        cached_db.execute(self.SQL, (3,))
        assert cached_db.result_cache.rejected_stores == 0
        hit = cached_db.execute(self.SQL, (3,))
        assert hit.rows_touched == 0

    def test_rejected_store_counter_in_stats(self, cached_db):
        assert "rejected_stores" in cached_db.result_cache_stats()


class TestServerBatchPaths:
    @pytest.fixture
    def stack(self, cached_db):
        cost_model = CostModel()
        clock = SimClock()
        server = DatabaseServer(cached_db, cost_model)
        return cached_db, server, BatchDriver(server, clock, cost_model)

    def test_repeated_batch_hits_and_gets_cheaper(self, stack):
        db, server, driver = stack
        statements = [("SELECT v FROM t WHERE v > ?", (10,)),
                      ("SELECT v FROM t WHERE v > ?", (20,)),
                      ("SELECT w FROM u WHERE w > ?", (30,))]
        cold = driver.execute_batch(statements, batch_optimize=True)
        assert server.result_cache_hits == 0
        hot = driver.execute_batch(statements, batch_optimize=True)
        assert server.result_cache_hits == 3
        for a, b in zip(cold, hot):
            assert a.rows == b.rows and a.columns == b.columns
        assert all(r.rows_touched == 0 for r in hot)

    def test_cached_members_drop_out_of_scan_groups(self, stack):
        db, server, driver = stack
        statements = [("SELECT v FROM t WHERE v > ?", (10,)),
                      ("SELECT v FROM t WHERE v > ?", (20,))]
        touched_before = db.total_rows_touched
        driver.execute_batch(statements, batch_optimize=True)
        groups_after_cold = server.shared_scan_groups
        assert groups_after_cold == 1  # the two scans shared once
        assert db.total_rows_touched == touched_before + 20
        driver.execute_batch(statements, batch_optimize=True)
        # Fully cached batch: no new group, no scan at all.
        assert server.shared_scan_groups == groups_after_cold
        assert db.total_rows_touched == touched_before + 20

    def test_write_in_batch_invalidates_following_reads(self, stack):
        db, server, driver = stack
        read = ("SELECT COUNT(*) AS n FROM t", ())
        first = driver.execute_batch(
            [read, ("INSERT INTO t (id, v) VALUES (200, 0)", ()), read],
            batch_optimize=True)
        assert first[0].scalar() == 20
        assert first[2].scalar() == 21

    def test_single_statement_path_counts_hits(self, stack):
        db, server, driver = stack
        plain = Driver(server, SimClock(), server.cost_model)
        plain.execute("SELECT v FROM t WHERE id = ?", (5,))
        plain.execute("SELECT v FROM t WHERE id = ?", (5,))
        assert server.result_cache_hits == 1


class TestHotPageLoads:
    @pytest.mark.parametrize("mode", ["original", "sloth"])
    def test_second_load_served_from_cache(self, mode):
        from repro.apps import itracker
        from repro.web.appserver import AppServer
        from repro.web.framework import Request

        db, dispatcher = itracker.build_app()
        server = AppServer(db, dispatcher, CostModel(), mode=mode)
        url = itracker.BENCHMARK_URLS[0]
        rows_before = db.total_rows_touched
        cold = server.load_page(Request(url))
        cold_rows = db.total_rows_touched - rows_before
        built = db.executor.plans_built

        rows_before = db.total_rows_touched
        hot = server.load_page(Request(url))
        hot_rows = db.total_rows_touched - rows_before
        assert hot.html == cold.html
        assert db.executor.plans_built == built  # plans_built unchanged
        assert hot.result_cache_hits > 0
        assert hot_rows == 0  # every cached statement touched nothing
        assert cold_rows > 0
        assert hot.time_ms < cold.time_ms


class TestDifferentialOracle:
    """Interleaved writer/reader sessions against a cache-disabled twin
    (the ``test_join_oracle`` methodology: same statements, two engines,
    byte-identical results everywhere)."""

    READS = (
        ("SELECT v FROM t WHERE id = ?", "pk"),
        ("SELECT id, v FROM t WHERE v > ?", "range"),
        ("SELECT COUNT(*) AS n FROM t", "none"),
        ("SELECT t.id, t.v, u.w FROM t JOIN u ON u.id = t.id "
         "WHERE t.v < ?", "range"),
        ("SELECT id FROM t ORDER BY v DESC LIMIT 3", "none"),
        ("SELECT w FROM u WHERE id = ?", "pk"),
    )
    WRITES = (
        "UPDATE t SET v = v + 1 WHERE id = ?",
        "DELETE FROM t WHERE id = ?",
        "INSERT INTO t (id, v) VALUES (?, ?)",
        "UPDATE u SET w = w - 1 WHERE id = ?",
    )

    def _build(self, result_cache_size):
        db = Database(result_cache_size=result_cache_size)
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        db.execute("CREATE TABLE u (id INT PRIMARY KEY, w INT)")
        db.execute("CREATE INDEX idx_t_v ON t (v) USING ORDERED")
        for i in range(30):
            db.execute("INSERT INTO t (id, v) VALUES (?, ?)", (i, i % 7))
            db.execute("INSERT INTO u (id, w) VALUES (?, ?)", (i, i % 5))
        return db

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cached_engine_matches_uncached(self, seed):
        rng = random.Random(seed)
        cached = self._build(result_cache_size=64)
        plain = self._build(result_cache_size=0)
        next_id = 1000
        in_txn = False
        for step in range(300):
            roll = rng.random()
            if roll < 0.55:  # read (often repeated params: cache pressure)
                sql, shape = self.READS[rng.randrange(len(self.READS))]
                if shape == "pk":
                    params = (rng.randrange(35),)
                elif shape == "range":
                    params = (rng.randrange(8),)
                else:
                    params = ()
                a = cached.execute(sql, params)
                b = plain.execute(sql, params)
                assert a.columns == b.columns
                assert a.rows == b.rows, (seed, step, sql, params)
            elif roll < 0.8:  # write
                sql = self.WRITES[rng.randrange(len(self.WRITES))]
                if "INSERT" in sql:
                    params = (next_id, rng.randrange(7))
                    next_id += 1
                else:
                    params = (rng.randrange(35),)
                cached.execute(sql, params)
                plain.execute(sql, params)
            elif not in_txn:
                cached.execute("BEGIN")
                plain.execute("BEGIN")
                in_txn = True
            else:
                verb = "COMMIT" if rng.random() < 0.5 else "ROLLBACK"
                cached.execute(verb)
                plain.execute(verb)
                in_txn = False
        if in_txn:
            cached.execute("COMMIT")
            plain.execute("COMMIT")
        assert cached.snapshot_counts() == plain.snapshot_counts()
        # The run must have exercised the cache, not just bypassed it.
        stats = cached.result_cache_stats()
        assert stats["hits"] > 0 and stats["invalidations"] > 0
