"""Property-based tests of the SQL engine's core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqldb import Database

ages = st.one_of(st.none(), st.integers(min_value=0, max_value=120))
name_strategy = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=8)
rows_strategy = st.lists(
    st.tuples(name_strategy, ages), min_size=0, max_size=25)


def build(rows):
    db = Database()
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT, age INT)")
    db.execute("CREATE INDEX idx_t_name ON t (name)")
    for i, (name, age) in enumerate(rows):
        db.execute("INSERT INTO t (id, name, age) VALUES (?, ?, ?)",
                   (i, name, age))
    return db


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_count_matches_inserted_rows(rows):
    db = build(rows)
    assert db.query("SELECT COUNT(*) AS n FROM t")[0]["n"] == len(rows)


@given(rows_strategy, st.integers(min_value=0, max_value=120))
@settings(max_examples=40, deadline=None)
def test_filter_partition(rows, threshold):
    """WHERE p, WHERE NOT p and WHERE p IS NULL partition the table."""
    db = build(rows)
    above = db.query("SELECT id FROM t WHERE age >= ?", (threshold,))
    below = db.query("SELECT id FROM t WHERE age < ?", (threshold,))
    nulls = db.query("SELECT id FROM t WHERE age IS NULL")
    assert len(above) + len(below) + len(nulls) == len(rows)
    ids = {r["id"] for r in above} | {r["id"] for r in below} | {
        r["id"] for r in nulls}
    assert len(ids) == len(rows)


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_index_lookup_agrees_with_scan(rows):
    """Equality via the secondary index returns exactly the scan's rows."""
    db = build(rows)
    for name in {name for name, _ in rows}:
        indexed = db.query("SELECT id FROM t WHERE name = ?", (name,))
        scanned = [r for r in db.query("SELECT id, name FROM t")
                   if r["name"] == name]
        assert sorted(r["id"] for r in indexed) == sorted(
            r["id"] for r in scanned)


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_order_by_is_sorted_and_stable_cardinality(rows):
    db = build(rows)
    result = db.query("SELECT age FROM t WHERE age IS NOT NULL "
                      "ORDER BY age")
    values = [r["age"] for r in result]
    assert values == sorted(values)
    assert len(values) == sum(1 for _, age in rows if age is not None)


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_sum_equals_python_sum(rows):
    db = build(rows)
    expected = sum(age for _, age in rows if age is not None)
    got = db.query("SELECT SUM(age) AS s FROM t")[0]["s"]
    if all(age is None for _, age in rows):
        assert got is None
    else:
        assert got == expected


@given(rows_strategy, st.data())
@settings(max_examples=40, deadline=None)
def test_transaction_rollback_restores_state(rows, data):
    db = build(rows)
    before = db.query("SELECT id, name, age FROM t ORDER BY id")
    db.execute("BEGIN")
    db.execute("UPDATE t SET age = 1 WHERE age > 10")
    db.execute("DELETE FROM t WHERE name LIKE 'a%'")
    db.execute("INSERT INTO t (id, name, age) VALUES (?, ?, ?)",
               (10_000, "new", 1))
    db.execute("ROLLBACK")
    after = db.query("SELECT id, name, age FROM t ORDER BY id")
    assert before == after
