import pytest

from repro.sqldb import ast_nodes as A
from repro.sqldb.errors import SqlTypeError
from repro.sqldb.expressions import RowContext, evaluate, like_to_regex
from repro.sqldb.types import (
    BOOLEAN, FLOAT, INTEGER, TEXT, canonical_type, coerce_value,
    is_comparable,
)


class TestTypes:
    def test_aliases(self):
        assert canonical_type("varchar") == TEXT
        assert canonical_type("BIGINT") == INTEGER
        assert canonical_type("double") == FLOAT
        assert canonical_type("bool") == BOOLEAN

    def test_unknown_type_raises(self):
        with pytest.raises(SqlTypeError):
            canonical_type("blob")

    def test_coerce_none_passthrough(self):
        assert coerce_value(None, INTEGER) is None

    def test_int_widens_to_float(self):
        assert coerce_value(3, FLOAT) == 3.0
        assert isinstance(coerce_value(3, FLOAT), float)

    def test_integral_float_narrows_to_int(self):
        assert coerce_value(4.0, INTEGER) == 4

    def test_fractional_float_rejected_for_int(self):
        with pytest.raises(SqlTypeError):
            coerce_value(4.5, INTEGER)

    def test_bool_for_integer_column(self):
        assert coerce_value(True, INTEGER) == 1

    def test_int_01_for_boolean_column(self):
        assert coerce_value(1, BOOLEAN) is True
        assert coerce_value(0, BOOLEAN) is False
        with pytest.raises(SqlTypeError):
            coerce_value(2, BOOLEAN)

    def test_text_rejects_numbers(self):
        with pytest.raises(SqlTypeError):
            coerce_value(5, TEXT)

    def test_comparability(self):
        assert is_comparable(1, 2.5)
        assert is_comparable("a", "b")
        assert not is_comparable(1, "a")
        assert not is_comparable(True, 1)  # bools only compare to bools


def ev(expr, **env):
    positions = {(None, k): i for i, k in enumerate(sorted(env))}
    ctx = RowContext(positions).bind(
        [env[k] for k in sorted(env)])
    return evaluate(expr, ctx)


class TestThreeValuedLogic:
    def test_null_propagates_through_arithmetic(self):
        expr = A.BinaryOp("+", A.ColumnRef(None, "x"), A.Literal(1))
        assert ev(expr, x=None) is None

    def test_and_short_circuit_with_null(self):
        # FALSE AND NULL = FALSE; TRUE AND NULL = NULL
        null = A.ColumnRef(None, "x")
        assert ev(A.BinaryOp("AND", A.Literal(False), null), x=None) is False
        assert ev(A.BinaryOp("AND", A.Literal(True), null), x=None) is None

    def test_or_with_null(self):
        null = A.ColumnRef(None, "x")
        assert ev(A.BinaryOp("OR", A.Literal(True), null), x=None) is True
        assert ev(A.BinaryOp("OR", A.Literal(False), null), x=None) is None

    def test_not_null_is_null(self):
        assert ev(A.UnaryOp("NOT", A.ColumnRef(None, "x")), x=None) is None

    def test_in_with_null_member(self):
        expr = A.InList(A.Literal(1),
                        [A.Literal(2), A.Literal(None)])
        assert ev(expr) is None  # unknown: 1 might equal NULL
        hit = A.InList(A.Literal(2), [A.Literal(2), A.Literal(None)])
        assert ev(hit) is True

    def test_division_by_zero_yields_null(self):
        expr = A.BinaryOp("/", A.Literal(1), A.Literal(0))
        assert ev(expr) is None

    def test_integer_division_stays_exact(self):
        assert ev(A.BinaryOp("/", A.Literal(7), A.Literal(2))) == 3.5
        assert ev(A.BinaryOp("/", A.Literal(8), A.Literal(2))) == 4

    def test_concat(self):
        assert ev(A.BinaryOp("||", A.Literal("a"), A.Literal("b"))) == "ab"

    def test_coalesce(self):
        expr = A.FuncCall("COALESCE",
                          [A.Literal(None), A.Literal(None), A.Literal(3)])
        assert ev(expr) == 3


class TestLike:
    @pytest.mark.parametrize("pattern,value,matches", [
        ("a%", "abc", True),
        ("a%", "ba", False),
        ("%c", "abc", True),
        ("a_c", "abc", True),
        ("a_c", "abbc", False),
        ("%", "", True),
        ("a.c", "abc", False),  # dot is literal, not regex
    ])
    def test_patterns(self, pattern, value, matches):
        assert bool(like_to_regex(pattern).match(value)) is matches
