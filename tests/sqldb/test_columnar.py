"""Unit tests for the columnar chunk layout itself.

The engine-parity suites (test_vectorized, test_join_oracle) pin the
columnar engine's *results*; these tests pin the layout internals —
dictionary-encoding decisions, ColumnStore snapshot caching and
invalidation, selection-vector plumbing, per-chunk zone maps (their
construction, the scans that skip on them, and their invalidation
under writes, rollbacks and read-view swaps), and the per-dictionary
bounded LIKE match cache.
"""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqldb import Database
from repro.sqldb import columnar as columnar_mod
from repro.sqldb.columnar import (ColumnChunk, DictColumn, LIKE_CACHE_LIMIT,
                                  NULL_CODE, _column_zones, _encode_dict)
from repro.sqldb.plan import physical as physical_mod


def _db(engine="columnar", n=100):
    db = Database(result_cache_size=0, engine=engine)
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT, v INT)")
    for i in range(n):
        db.execute("INSERT INTO t VALUES (?, ?, ?)",
                   (i, None if i % 10 == 9 else f"label{i % 4}", i * 3))
    return db


# ---------------------------------------------------------------------------
# Dictionary encoding
# ---------------------------------------------------------------------------


def test_encode_dict_threshold():
    # 4 distinct over 100 rows: encoded.
    col, n_distinct = _encode_dict([f"x{i % 4}" for i in range(100)])
    assert isinstance(col, DictColumn)
    assert n_distinct == 4
    assert len(col.meta.values) == 4
    # All-distinct values: encoding would not pay; plain list kept.
    values = [f"x{i}" for i in range(100)]
    col, n_distinct = _encode_dict(values)
    assert col is values
    assert n_distinct == 100
    # NULLs encode as NULL_CODE and don't count as distinct.
    col, n_distinct = _encode_dict(["a", None, "a", None])
    assert isinstance(col, DictColumn)
    assert n_distinct == 1
    assert col.codes == [0, NULL_CODE, 0, NULL_CODE]
    assert col.decode() == ["a", None, "a", None]
    # All-NULL column stays a plain list (nothing to encode).
    values = [None, None, None]
    col, n_distinct = _encode_dict(values)
    assert col is values and n_distinct == 0


def test_dict_column_slice_shares_meta():
    col, _ = _encode_dict(["a", "b", "a", "b", "a", "b"])
    part = col[1:4]
    assert isinstance(part, DictColumn)
    assert part.meta is col.meta
    assert part.decode() == ["b", "a", "b"]
    assert part[0] == "b"
    assert len(part) == 3


def test_dict_like_cache_is_per_dictionary():
    import re
    col, _ = _encode_dict(["apple", "banana", "apple", "avocado",
                           "banana", "apple"])
    regex = re.compile("a.*")
    first = col.like_matches("a%", regex)
    assert first == [True, False, True]  # one flag per distinct value
    # Second call returns the cached table, no recompute.
    assert col.like_matches("a%", regex) is first
    # Slices share the cache through the shared meta.
    assert col[2:5].like_matches("a%", regex) is first


def test_column_store_encodes_text_not_int():
    db = _db(n=100)
    store = db.tables["t"].column_store()
    id_col, name_col, v_col = store.columns
    assert isinstance(name_col, DictColumn)
    assert not isinstance(id_col, DictColumn)
    assert not isinstance(v_col, DictColumn)
    assert store.distinct["name"] == 4
    assert store.distinct["id"] == 100
    assert store.length == 100


# ---------------------------------------------------------------------------
# ColumnStore snapshot caching
# ---------------------------------------------------------------------------


def test_column_store_cached_until_mutation():
    db = _db()
    table = db.tables["t"]
    first = table.column_store()
    assert table.column_store() is first  # stable across reads
    db.execute("SELECT COUNT(*) FROM t WHERE name = 'label1'")
    assert table.column_store() is first  # queries don't invalidate
    db.execute("UPDATE t SET v = 0 WHERE id = 5")
    second = table.column_store()
    assert second is not first
    db.execute("DELETE FROM t WHERE id = 6")
    assert table.column_store() is not second


def test_column_store_invalidated_by_rollback():
    db = _db()
    table = db.tables["t"]
    db.execute("BEGIN")
    db.execute("DELETE FROM t WHERE id < 50")
    mid = table.column_store()
    assert mid.length == 50
    db.execute("ROLLBACK")
    after = table.column_store()
    assert after is not mid
    assert after.length == 100
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 100


# ---------------------------------------------------------------------------
# ColumnChunk plumbing
# ---------------------------------------------------------------------------


def test_chunk_selection_vector_round_trip():
    chunk = ColumnChunk([[1, 2, 3, 4], ["a", "b", "c", "d"]], 4, sel=[1, 3])
    assert chunk.n_live() == 2
    assert list(chunk.live_indices()) == [1, 3]
    assert chunk.to_rows() == [[2, "b"], [4, "d"]]
    assert chunk.gather(0) == [2, 4]
    full = ColumnChunk([[1, 2], ["x", "y"]], 2)
    assert full.sel is None
    assert list(full.live_indices()) == [0, 1]
    assert full.to_rows() == [[1, "x"], [2, "y"]]


def test_chunk_take_keeps_dictionaries_encoded():
    col, _ = _encode_dict(["a", "b", "a", "b"])
    chunk = ColumnChunk([[10, 20, 30, 40], col], 4)
    out = chunk.take([0, 2, 2])  # duplicates allowed (join fan-out)
    assert out.length == 3 and out.sel is None
    assert out.columns[0] == [10, 30, 30]
    taken = out.columns[1]
    assert isinstance(taken, DictColumn) and taken.meta is col.meta
    assert taken.decode() == ["a", "a", "a"]
    # skip_range lanes become all-NULL placeholders.
    skipped = chunk.take([1], skip_range=(1, 2))
    assert skipped.columns[1] is None
    assert skipped.row(0) == [20, None]


def test_from_rows_transpose_shim():
    chunk = ColumnChunk.from_rows([[1, "a"], [2, "b"]], 2)
    assert chunk.length == 2 and chunk.sel is None
    assert chunk.columns == [[1, 2], ["a", "b"]]
    empty = ColumnChunk.from_rows([], 3)
    assert empty.length == 0
    assert empty.columns == [[], [], []]
    assert empty.to_rows() == []


# ---------------------------------------------------------------------------
# Engine-level behaviors that hang off the layout
# ---------------------------------------------------------------------------


def test_dictionary_predicates_agree_with_row_engine():
    queries = (
        ("SELECT id FROM t WHERE name = 'label2'", ()),
        ("SELECT id FROM t WHERE name <> 'label0'", ()),
        ("SELECT id FROM t WHERE name LIKE 'label%'", ()),
        ("SELECT id FROM t WHERE name LIKE '%2'", ()),
        ("SELECT id FROM t WHERE name IN ('label1', 'label3', 'zzz')", ()),
        ("SELECT id FROM t WHERE name IS NULL", ()),
        ("SELECT name, COUNT(*) FROM t GROUP BY name ORDER BY name", ()),
    )
    columnar, row = _db("columnar"), _db("row")
    for sql, params in queries:
        a = columnar.execute(sql, params)
        b = row.execute(sql, params)
        assert a.rows == b.rows, sql
        assert a.rows_touched == b.rows_touched, sql


# ---------------------------------------------------------------------------
# Zone maps
# ---------------------------------------------------------------------------


def test_zone_maps_record_chunk_min_max_and_nulls():
    db = _db(n=100)
    store = db.tables["t"].column_store()
    assert store.zones["id"] == [(0, 99, 0, 100)]
    assert store.zones["v"] == [(0, 297, 0, 100)]
    (lo, hi, nulls, count), = store.zones["name"]
    assert (lo, hi) == ("label0", "label3")
    assert nulls == 10 and count == 100
    # The column-level aggregates the cost model reads.
    assert store.ranges["id"] == (0, 99)
    assert store.ranges["name"] == ("label0", "label3")
    assert store.nulls["name"] == 10 and store.nulls["id"] == 0


def test_zone_maps_withhold_unorderable_ranges():
    # A bool hiding among ints would make the scan's comparison raise;
    # the zone must advertise no range so pruning cannot skip the raise.
    assert _column_zones([True, 3], 2) == [(None, None, 0, 2)]
    assert _column_zones([1, "x"], 2) == [(None, None, 0, 2)]
    # All-NULL chunks carry only a trustworthy null count.
    assert _column_zones([None, None, None], 3) == [(None, None, 3, 3)]
    # Homogeneous non-numeric types still get a range.
    assert _column_zones(["b", None, "a"], 3) == [("a", "b", 1, 3)]


def test_scan_skips_chunks_outside_range():
    columnar, row = _db("columnar", n=2500), _db("row", n=2500)
    sql = "SELECT id, v FROM t WHERE id < ?"
    a, b = columnar.execute(sql, (1024,)), row.execute(sql, (1024,))
    assert a.rows == b.rows and a.rowcount == 1024
    # Chunks 2 and 3 (ids 1024..2499) are proven irrelevant and skipped —
    # but still charge rows_touched: the cost currency is engine-invariant.
    assert a.chunks_skipped == 2 and b.chunks_skipped == 0
    assert a.rows_touched == b.rows_touched == 2500


def test_zone_maps_invalidated_by_interleaved_writes():
    db = _db(n=2500)
    table = db.tables["t"]
    first = table.column_store()
    assert first.zones["id"][0][:2] == (0, 1023)
    assert len(first.zones["id"]) == 3
    # v is non-negative everywhere, so v < 0 skips all three chunks.
    assert db.execute("SELECT id FROM t WHERE v < 0").chunks_skipped == 3
    # An UPDATE moves one value below chunk 0's advertised minimum; a
    # stale zone map would keep skipping the chunk and lose the row.
    db.execute("UPDATE t SET v = -1 WHERE id = 0")
    second = table.column_store()
    assert second is not first
    assert second.zones["v"][0][0] == -1
    res = db.execute("SELECT id FROM t WHERE v < 0")
    assert res.rows == [(0,)] and res.chunks_skipped == 2


def test_zone_maps_invalidated_by_rollback():
    db = _db(n=2500)
    table = db.tables["t"]
    db.execute("BEGIN")
    db.execute("UPDATE t SET v = -7 WHERE id = 2400")
    mid = table.column_store()
    assert mid.zones["v"][2][0] == -7
    db.execute("ROLLBACK")
    after = table.column_store()
    assert after is not mid
    assert after.zones["v"][2][0] >= 0
    # Post-rollback scans skip on the restored (non-negative) zones and
    # still agree with the logical contents.
    res = db.execute("SELECT COUNT(*) FROM t WHERE v < 0")
    assert res.scalar() == 0


def test_zone_maps_follow_read_view_swap():
    db = _db(n=2500)
    table = db.tables["t"]
    baseline = table.column_store()
    assert len(baseline.zones["id"]) == 3
    old_rows = table.rows
    table.rows = dict(list(old_rows.items())[:100])  # simulate _swap_in
    try:
        swapped = table.column_store()
        assert swapped is not baseline
        assert swapped.zones["id"] == [(0, 99, 0, 100)]
    finally:
        table.rows = old_rows
    assert len(table.column_store().zones["id"]) == 3


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.one_of(st.none(), st.integers(-50, 50)),
                    min_size=0, max_size=60),
    low=st.integers(-60, 60),
    span=st.integers(0, 60),
    op=st.sampled_from(["<", "<=", ">", ">=", "=", "<>", "BETWEEN",
                        "IS NULL", "IS NOT NULL", "IN"]),
)
def test_chunk_skipping_never_changes_results(values, low, span, op):
    """Differential oracle: with tiny chunks (so zone pruning fires on
    realistic data sizes), the columnar engine must return exactly the
    batch engine's rows and rows_touched for every predicate shape the
    prune compiler handles — skipping may only ever change wall-clock."""
    old_chunk = columnar_mod.CHUNK_SIZE
    columnar_mod.CHUNK_SIZE = physical_mod.CHUNK_SIZE = 8
    try:
        dbs = {}
        for engine in ("batch", "columnar"):
            db = Database(result_cache_size=0, engine=engine)
            db.execute("CREATE TABLE o (id INT PRIMARY KEY, v INT)")
            for i, v in enumerate(values):
                db.execute("INSERT INTO o VALUES (?, ?)", (i, v))
            dbs[engine] = db
        high = low + span
        if op == "BETWEEN":
            sql = "SELECT id, v FROM o WHERE v BETWEEN ? AND ?"
            params = (low, high)
        elif op == "IS NULL":
            sql, params = "SELECT id, v FROM o WHERE v IS NULL", ()
        elif op == "IS NOT NULL":
            sql, params = "SELECT id, v FROM o WHERE v IS NOT NULL", ()
        elif op == "IN":
            sql = f"SELECT id, v FROM o WHERE v IN ({low}, {high}, NULL)"
            params = ()
        else:
            sql, params = f"SELECT id, v FROM o WHERE v {op} ?", (low,)
        batch = dbs["batch"].execute(sql, params)
        col = dbs["columnar"].execute(sql, params)
        assert col.rows == batch.rows
        assert col.rows_touched == batch.rows_touched
        assert batch.chunks_skipped == 0
    finally:
        columnar_mod.CHUNK_SIZE = physical_mod.CHUNK_SIZE = old_chunk


# ---------------------------------------------------------------------------
# LIKE cache LRU cap
# ---------------------------------------------------------------------------


def test_like_cache_capped_lru_with_stats():
    col, _ = _encode_dict(["alpha", "beta"] * 4)
    meta = col.meta
    regex = re.compile("a.*")
    for i in range(LIKE_CACHE_LIMIT + 10):
        col.like_matches(f"p{i}%", regex)
    stats = meta.like_cache_stats()
    assert stats["size"] == stats["limit"] == LIKE_CACHE_LIMIT
    assert stats["misses"] == LIKE_CACHE_LIMIT + 10
    assert stats["hits"] == 0
    # The ten oldest patterns were evicted, the newest survive.
    assert "p0%" not in meta.like_cache
    assert f"p{LIKE_CACHE_LIMIT + 9}%" in meta.like_cache
    # A hit refreshes recency: p10 (currently oldest) survives the next
    # insertion and the new oldest entry (p11) is evicted instead.
    col.like_matches("p10%", regex)
    assert meta.like_cache_stats()["hits"] == 1
    col.like_matches("fresh%", regex)
    assert "p10%" in meta.like_cache
    assert "p11%" not in meta.like_cache
    assert meta.like_cache_stats()["size"] == LIKE_CACHE_LIMIT


def test_read_view_swap_invalidates_snapshot():
    """The per-request read-view manager swaps ``table.rows`` wholesale
    without bumping counters; snapshot validity is keyed on the rows
    dict's identity, so a snapshot of the old dict must not serve the
    swapped-in contents."""
    db = _db()
    table = db.tables["t"]
    baseline = table.column_store()
    old_rows = table.rows
    table.rows = dict(list(old_rows.items())[:10])  # simulate _swap_in
    try:
        swapped = table.column_store()
        assert swapped is not baseline
        assert swapped.length == 10
    finally:
        table.rows = old_rows
    restored = table.column_store()
    assert restored.length == 100
