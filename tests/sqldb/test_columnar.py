"""Unit tests for the columnar chunk layout itself.

The engine-parity suites (test_vectorized, test_join_oracle) pin the
columnar engine's *results*; these tests pin the layout internals —
dictionary-encoding decisions, ColumnStore snapshot caching and
invalidation, selection-vector plumbing, and the per-dictionary LIKE
match cache.
"""

from repro.sqldb import Database
from repro.sqldb.columnar import (ColumnChunk, DictColumn, NULL_CODE,
                                  _encode_dict)


def _db(engine="columnar", n=100):
    db = Database(result_cache_size=0, engine=engine)
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT, v INT)")
    for i in range(n):
        db.execute("INSERT INTO t VALUES (?, ?, ?)",
                   (i, None if i % 10 == 9 else f"label{i % 4}", i * 3))
    return db


# ---------------------------------------------------------------------------
# Dictionary encoding
# ---------------------------------------------------------------------------


def test_encode_dict_threshold():
    # 4 distinct over 100 rows: encoded.
    col, n_distinct = _encode_dict([f"x{i % 4}" for i in range(100)])
    assert isinstance(col, DictColumn)
    assert n_distinct == 4
    assert len(col.meta.values) == 4
    # All-distinct values: encoding would not pay; plain list kept.
    values = [f"x{i}" for i in range(100)]
    col, n_distinct = _encode_dict(values)
    assert col is values
    assert n_distinct == 100
    # NULLs encode as NULL_CODE and don't count as distinct.
    col, n_distinct = _encode_dict(["a", None, "a", None])
    assert isinstance(col, DictColumn)
    assert n_distinct == 1
    assert col.codes == [0, NULL_CODE, 0, NULL_CODE]
    assert col.decode() == ["a", None, "a", None]
    # All-NULL column stays a plain list (nothing to encode).
    values = [None, None, None]
    col, n_distinct = _encode_dict(values)
    assert col is values and n_distinct == 0


def test_dict_column_slice_shares_meta():
    col, _ = _encode_dict(["a", "b", "a", "b", "a", "b"])
    part = col[1:4]
    assert isinstance(part, DictColumn)
    assert part.meta is col.meta
    assert part.decode() == ["b", "a", "b"]
    assert part[0] == "b"
    assert len(part) == 3


def test_dict_like_cache_is_per_dictionary():
    import re
    col, _ = _encode_dict(["apple", "banana", "apple", "avocado",
                           "banana", "apple"])
    regex = re.compile("a.*")
    first = col.like_matches("a%", regex)
    assert first == [True, False, True]  # one flag per distinct value
    # Second call returns the cached table, no recompute.
    assert col.like_matches("a%", regex) is first
    # Slices share the cache through the shared meta.
    assert col[2:5].like_matches("a%", regex) is first


def test_column_store_encodes_text_not_int():
    db = _db(n=100)
    store = db.tables["t"].column_store()
    id_col, name_col, v_col = store.columns
    assert isinstance(name_col, DictColumn)
    assert not isinstance(id_col, DictColumn)
    assert not isinstance(v_col, DictColumn)
    assert store.distinct["name"] == 4
    assert store.distinct["id"] == 100
    assert store.length == 100


# ---------------------------------------------------------------------------
# ColumnStore snapshot caching
# ---------------------------------------------------------------------------


def test_column_store_cached_until_mutation():
    db = _db()
    table = db.tables["t"]
    first = table.column_store()
    assert table.column_store() is first  # stable across reads
    db.execute("SELECT COUNT(*) FROM t WHERE name = 'label1'")
    assert table.column_store() is first  # queries don't invalidate
    db.execute("UPDATE t SET v = 0 WHERE id = 5")
    second = table.column_store()
    assert second is not first
    db.execute("DELETE FROM t WHERE id = 6")
    assert table.column_store() is not second


def test_column_store_invalidated_by_rollback():
    db = _db()
    table = db.tables["t"]
    db.execute("BEGIN")
    db.execute("DELETE FROM t WHERE id < 50")
    mid = table.column_store()
    assert mid.length == 50
    db.execute("ROLLBACK")
    after = table.column_store()
    assert after is not mid
    assert after.length == 100
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 100


# ---------------------------------------------------------------------------
# ColumnChunk plumbing
# ---------------------------------------------------------------------------


def test_chunk_selection_vector_round_trip():
    chunk = ColumnChunk([[1, 2, 3, 4], ["a", "b", "c", "d"]], 4, sel=[1, 3])
    assert chunk.n_live() == 2
    assert list(chunk.live_indices()) == [1, 3]
    assert chunk.to_rows() == [[2, "b"], [4, "d"]]
    assert chunk.gather(0) == [2, 4]
    full = ColumnChunk([[1, 2], ["x", "y"]], 2)
    assert full.sel is None
    assert list(full.live_indices()) == [0, 1]
    assert full.to_rows() == [[1, "x"], [2, "y"]]


def test_chunk_take_keeps_dictionaries_encoded():
    col, _ = _encode_dict(["a", "b", "a", "b"])
    chunk = ColumnChunk([[10, 20, 30, 40], col], 4)
    out = chunk.take([0, 2, 2])  # duplicates allowed (join fan-out)
    assert out.length == 3 and out.sel is None
    assert out.columns[0] == [10, 30, 30]
    taken = out.columns[1]
    assert isinstance(taken, DictColumn) and taken.meta is col.meta
    assert taken.decode() == ["a", "a", "a"]
    # skip_range lanes become all-NULL placeholders.
    skipped = chunk.take([1], skip_range=(1, 2))
    assert skipped.columns[1] is None
    assert skipped.row(0) == [20, None]


def test_from_rows_transpose_shim():
    chunk = ColumnChunk.from_rows([[1, "a"], [2, "b"]], 2)
    assert chunk.length == 2 and chunk.sel is None
    assert chunk.columns == [[1, 2], ["a", "b"]]
    empty = ColumnChunk.from_rows([], 3)
    assert empty.length == 0
    assert empty.columns == [[], [], []]
    assert empty.to_rows() == []


# ---------------------------------------------------------------------------
# Engine-level behaviors that hang off the layout
# ---------------------------------------------------------------------------


def test_dictionary_predicates_agree_with_row_engine():
    queries = (
        ("SELECT id FROM t WHERE name = 'label2'", ()),
        ("SELECT id FROM t WHERE name <> 'label0'", ()),
        ("SELECT id FROM t WHERE name LIKE 'label%'", ()),
        ("SELECT id FROM t WHERE name LIKE '%2'", ()),
        ("SELECT id FROM t WHERE name IN ('label1', 'label3', 'zzz')", ()),
        ("SELECT id FROM t WHERE name IS NULL", ()),
        ("SELECT name, COUNT(*) FROM t GROUP BY name ORDER BY name", ()),
    )
    columnar, row = _db("columnar"), _db("row")
    for sql, params in queries:
        a = columnar.execute(sql, params)
        b = row.execute(sql, params)
        assert a.rows == b.rows, sql
        assert a.rows_touched == b.rows_touched, sql


def test_read_view_swap_invalidates_snapshot():
    """The per-request read-view manager swaps ``table.rows`` wholesale
    without bumping counters; snapshot validity is keyed on the rows
    dict's identity, so a snapshot of the old dict must not serve the
    swapped-in contents."""
    db = _db()
    table = db.tables["t"]
    baseline = table.column_store()
    old_rows = table.rows
    table.rows = dict(list(old_rows.items())[:10])  # simulate _swap_in
    try:
        swapped = table.column_store()
        assert swapped is not baseline
        assert swapped.length == 10
    finally:
        table.rows = old_rows
    restored = table.column_store()
    assert restored.length == 100
