"""Ordered (range) indexes and sort-aware planning.

Covers the whole vertical: ``USING ORDERED`` grammar, the sorted-key index
structure (NULL placement, unique semantics, transactional maintenance),
the ``IndexRangeScan`` access path (bounds, equality prefix, parameter and
NULL bounds), sort elision (including the cases that must *not* elide), the
top-N limit hint, UPDATE/DELETE range candidates, and plan-cache pickup.
"""

import pytest

from repro.sqldb import Database
from repro.sqldb import ast_nodes as A
from repro.sqldb.errors import ConstraintError, SqlParseError
from repro.sqldb.indexes import OrderedIndex
from repro.sqldb.parser import parse
from repro.sqldb.plan import FROM_ORDER_OPTIONS, OptimizerOptions


@pytest.fixture
def events_db():
    db = Database()
    db.execute("CREATE TABLE ev (id INT PRIMARY KEY, day INT, kind TEXT, "
               "val INT)")
    db.execute("CREATE INDEX idx_ev_day ON ev (day) USING ORDERED")
    db.execute("CREATE INDEX idx_ev_kind_day ON ev (kind, day) USING ORDERED")
    rows = [
        (0, 7, "a", 10), (1, 3, "b", 20), (2, None, "a", 30),
        (3, 3, "a", 40), (4, 9, None, 50), (5, 1, "b", 60),
        (6, 7, "b", 70), (7, 5, "a", 80),
    ]
    for row in rows:
        db.execute("INSERT INTO ev (id, day, kind, val) "
                   "VALUES (?, ?, ?, ?)", row)
    return db


# ---------------------------------------------------------------------------
# Grammar
# ---------------------------------------------------------------------------

class TestGrammar:
    def test_using_ordered_parses(self):
        stmt = parse("CREATE INDEX i ON t (a, b) USING ORDERED")
        assert isinstance(stmt, A.CreateIndex)
        assert stmt.method == "ordered"
        assert stmt.columns == ["a", "b"]

    def test_default_method_is_hash(self):
        assert parse("CREATE INDEX i ON t (a)").method == "hash"

    def test_unique_ordered(self):
        stmt = parse("CREATE UNIQUE INDEX i ON t (a) USING ORDERED")
        assert stmt.unique and stmt.method == "ordered"

    def test_using_requires_ordered(self):
        with pytest.raises(SqlParseError):
            parse("CREATE INDEX i ON t (a) USING btree")


# ---------------------------------------------------------------------------
# The index structure
# ---------------------------------------------------------------------------

class TestOrderedIndexStructure:
    def test_catalog_records_method(self, events_db):
        info = events_db.catalog.table("ev").indexes["idx_ev_day"]
        assert info.method == "ordered"
        index = events_db.tables_get("ev").indexes["idx_ev_day"]
        assert isinstance(index, OrderedIndex)

    def test_indexes_null_keys_unlike_hash(self, events_db):
        index = events_db.tables_get("ev").indexes["idx_ev_day"]
        assert len(index) == 8  # the NULL-day row is indexed too

    def test_full_walk_orders_nulls_first(self, events_db):
        index = events_db.tables_get("ev").indexes["idx_ev_day"]
        table = events_db.tables_get("ev")
        days = [table.rows[rid][1] for rid in index.scan()]
        assert days == [None, 1, 3, 3, 5, 7, 7, 9]

    def test_bounded_scan_excludes_nulls(self, events_db):
        index = events_db.tables_get("ev").indexes["idx_ev_day"]
        table = events_db.tables_get("ev")
        days = [table.rows[rid][1] for rid in index.scan((), None, 5)]
        assert days == [1, 3, 3, 5]

    def test_crossed_bounds_are_empty(self, events_db):
        index = events_db.tables_get("ev").indexes["idx_ev_day"]
        assert list(index.scan((), 9, 3)) == []

    def test_equality_lookup_matches_hash_semantics(self, events_db):
        index = events_db.tables_get("ev").indexes["idx_ev_day"]
        assert index.lookup((3,)) == {2, 4}  # row ids of day=3
        assert index.lookup((None,)) == set()

    def test_unique_allows_multiple_nulls(self, db):
        db.execute("CREATE TABLE u (id INT PRIMARY KEY, k INT)")
        db.execute("CREATE UNIQUE INDEX uk ON u (k) USING ORDERED")
        db.execute("INSERT INTO u (id, k) VALUES (1, NULL), (2, NULL)")
        db.execute("INSERT INTO u (id, k) VALUES (3, 5)")
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO u (id, k) VALUES (4, 5)")

    def test_rollback_restores_ordered_index(self, events_db):
        index = events_db.tables_get("ev").indexes["idx_ev_day"]
        before = list(index.scan())
        events_db.execute("BEGIN")
        events_db.execute("DELETE FROM ev WHERE day >= 5")
        events_db.execute("INSERT INTO ev (id, day, kind, val) "
                          "VALUES (99, 2, 'z', 0)")
        events_db.execute("ROLLBACK")
        assert list(index.scan()) == before

    def test_update_moves_key(self, events_db):
        events_db.execute("UPDATE ev SET day = 100 WHERE id = 5")
        index = events_db.tables_get("ev").indexes["idx_ev_day"]
        table = events_db.tables_get("ev")
        days = [table.rows[rid][1] for rid in index.scan()]
        assert days == [None, 3, 3, 5, 7, 7, 9, 100]

    def test_range_fraction_tracks_data(self, events_db):
        stats = events_db.catalog.table("ev").stats
        # distinct day keys: None, 1, 3, 5, 7, 9 -> [3, 7] covers 3 of 6
        assert stats.range_fraction("day", 3, 7) == pytest.approx(0.5)
        assert stats.range_fraction("val", 0, 100) is None  # no stats

    def test_drop_index_unregisters_stats(self, events_db):
        events_db.execute("DROP INDEX idx_ev_day")
        stats = events_db.catalog.table("ev").stats
        assert stats.range_fraction("day", 3, 7) is None
        # the (kind, day) index still covers kind
        assert stats.range_fraction("kind", "a", "b") is not None


# ---------------------------------------------------------------------------
# Range-scan access path
# ---------------------------------------------------------------------------

class TestRangeScanPath:
    def test_between_uses_range_scan(self, events_db):
        plan = events_db.explain(
            "SELECT id FROM ev WHERE day BETWEEN 3 AND 7")
        assert "IndexRangeScan" in plan and "3 <= day <= 7" in plan
        result = events_db.execute(
            "SELECT id FROM ev WHERE day BETWEEN 3 AND 7")
        assert sorted(r[0] for r in result.rows) == [0, 1, 3, 6, 7]
        assert result.rows_touched == 5

    def test_open_range_with_params(self, events_db):
        result = events_db.execute(
            "SELECT id FROM ev WHERE day > ?", (5,))
        assert sorted(r[0] for r in result.rows) == [0, 4, 6]
        assert result.rows_touched == 3

    def test_null_param_bound_yields_empty(self, events_db):
        result = events_db.execute(
            "SELECT id FROM ev WHERE day > ?", (None,))
        assert result.rows == []
        assert result.rows_touched == 0

    def test_equality_prefix_plus_range(self, events_db):
        plan = events_db.explain(
            "SELECT id FROM ev WHERE kind = ? AND day >= ?")
        assert "idx_ev_kind_day" in plan and "eq='kind = ?'" in plan
        result = events_db.execute(
            "SELECT id FROM ev WHERE kind = ? AND day >= ?", ("a", 5))
        assert sorted(r[0] for r in result.rows) == [0, 7]
        assert result.rows_touched == 2

    def test_mixed_between_bounds_empty(self, events_db):
        result = events_db.execute(
            "SELECT id FROM ev WHERE day BETWEEN ? AND ?", (8, 2))
        assert result.rows == [] and result.rows_touched == 0

    def test_seq_scan_baseline_never_range_scans(self, events_db):
        events_db.optimizer_options = FROM_ORDER_OPTIONS
        plan = events_db.explain("SELECT id FROM ev WHERE day BETWEEN 3 AND 7")
        assert "IndexRangeScan" not in plan

    def test_equality_still_prefers_hash_lookup(self, events_db):
        events_db.execute("CREATE INDEX idx_ev_val ON ev (val)")
        plan = events_db.explain("SELECT id FROM ev WHERE val = ?")
        assert "IndexLookup" in plan and "IndexRangeScan" not in plan


# ---------------------------------------------------------------------------
# Sort elision
# ---------------------------------------------------------------------------

class TestSortElision:
    def test_order_by_indexed_column_elides_sort(self, events_db):
        plan = events_db.explain("SELECT id, day FROM ev ORDER BY day")
        assert "sort elided" in plan and "Sort" not in plan.split("elided")[1]
        result = events_db.execute("SELECT id, day FROM ev ORDER BY day")
        explicit = Database()  # same data, no ordered index
        explicit.execute(
            "CREATE TABLE ev (id INT PRIMARY KEY, day INT, kind TEXT, "
            "val INT)")
        for row in events_db.execute("SELECT * FROM ev").rows:
            explicit.execute("INSERT INTO ev (id, day, kind, val) "
                             "VALUES (?, ?, ?, ?)", row)
        reference = explicit.execute("SELECT id, day FROM ev ORDER BY day")
        # byte-identical, not just multiset-equal: ties keep row order
        assert result.rows == reference.rows

    def test_descending_walk(self, events_db):
        result = events_db.execute("SELECT day FROM ev ORDER BY day DESC")
        assert [r[0] for r in result.rows] == [9, 7, 7, 5, 3, 3, 1, None]

    def test_pinned_prefix_column_is_skippable(self, events_db):
        plan = events_db.explain(
            "SELECT id FROM ev WHERE kind = ? ORDER BY kind, day")
        assert "sort elided" in plan

    def test_mixed_directions_keep_sort(self, events_db):
        plan = events_db.explain(
            "SELECT id FROM ev ORDER BY kind, day DESC")
        assert "Sort" in plan

    def test_unindexed_order_keeps_sort(self, events_db):
        plan = events_db.explain("SELECT id FROM ev ORDER BY val")
        assert "Sort" in plan and "sort elided" not in plan

    def test_alias_shadowing_keeps_sort(self, events_db):
        # ORDER BY day binds to the *output* column named day (= val), so
        # the index order over the day column must not be trusted.
        plan = events_db.explain(
            "SELECT id, val AS day FROM ev ORDER BY day")
        assert "Sort" in plan and "sort elided" not in plan

    def test_distinct_keeps_sort(self, events_db):
        # DISTINCT dedups by first occurrence *before* the Sort would run;
        # eliding the Sort would change the final row order, so DISTINCT
        # queries must keep the explicit sort.
        events_db.execute("CREATE INDEX idx_ev_kind ON ev (kind) "
                          "USING ORDERED")
        sql = "SELECT DISTINCT kind FROM ev WHERE day >= 1 ORDER BY kind"
        assert "sort elided" not in events_db.explain(sql)
        baseline = Database()
        baseline.optimizer_options = FROM_ORDER_OPTIONS
        baseline.execute("CREATE TABLE ev (id INT PRIMARY KEY, day INT, "
                         "kind TEXT, val INT)")
        for row in events_db.execute("SELECT * FROM ev").rows:
            baseline.execute("INSERT INTO ev (id, day, kind, val) "
                             "VALUES (?, ?, ?, ?)", row)
        assert events_db.execute(sql).rows == baseline.execute(sql).rows

    def test_aggregate_order_keeps_sort(self, events_db):
        plan = events_db.explain(
            "SELECT day, COUNT(*) AS n FROM ev GROUP BY day ORDER BY day")
        assert "Sort" in plan and "sort elided" not in plan

    def test_elision_survives_join(self, events_db):
        events_db.execute("CREATE TABLE kinds (kind TEXT PRIMARY KEY, "
                          "label TEXT)")
        for kind in ("a", "b"):
            events_db.execute("INSERT INTO kinds (kind, label) "
                              "VALUES (?, ?)", (kind, kind.upper()))
        sql = ("SELECT e.id, e.day, k.label FROM ev e "
               "JOIN kinds k ON e.kind = k.kind WHERE e.day >= 3 "
               "ORDER BY e.day")
        assert "sort elided" in events_db.explain(sql)
        result = events_db.execute(sql)
        days = [r[1] for r in result.rows]
        assert days == sorted(days)

    def test_order_by_output_position_elides(self, events_db):
        plan = events_db.explain("SELECT day, id FROM ev ORDER BY 1")
        assert "sort elided" in plan


# ---------------------------------------------------------------------------
# Top-N limit hint
# ---------------------------------------------------------------------------

class TestLimitHint:
    def test_top_n_touches_only_n_rows(self, events_db):
        result = events_db.execute(
            "SELECT id, day FROM ev ORDER BY day DESC LIMIT 2")
        assert [r[1] for r in result.rows] == [9, 7]
        assert result.rows_touched == 2

    def test_offset_included_in_cutoff(self, events_db):
        result = events_db.execute(
            "SELECT day FROM ev ORDER BY day DESC LIMIT 2 OFFSET 1")
        assert [r[0] for r in result.rows] == [7, 7]
        assert result.rows_touched == 3

    def test_limit_without_elision_unchanged(self, events_db):
        result = events_db.execute(
            "SELECT id FROM ev ORDER BY val LIMIT 2")
        assert result.rows_touched == 8  # full scan + explicit sort

    def test_distinct_disables_hint(self, events_db):
        result = events_db.execute(
            "SELECT DISTINCT day FROM ev ORDER BY day LIMIT 2")
        assert [r[0] for r in result.rows] == [None, 1]
        assert result.rows_touched == 8


# ---------------------------------------------------------------------------
# UPDATE / DELETE range candidates
# ---------------------------------------------------------------------------

class TestWriteRangeCandidates:
    def test_update_touches_only_range(self, events_db):
        result = events_db.execute(
            "UPDATE ev SET val = 0 WHERE day BETWEEN 3 AND 5")
        assert result.rowcount == 3
        assert result.rows_touched == 3

    def test_delete_touches_only_range(self, events_db):
        result = events_db.execute("DELETE FROM ev WHERE day > ?", (7,))
        assert result.rowcount == 1
        assert result.rows_touched == 1
        assert events_db.table_size("ev") == 7

    def test_residual_conjuncts_still_checked(self, events_db):
        result = events_db.execute(
            "DELETE FROM ev WHERE day >= 3 AND val > ?", (50,))
        # range candidates: the six day>=3 rows; only ids 6 and 7 pass the
        # residual val conjunct
        assert result.rowcount == 2
        assert result.rows_touched == 6


# ---------------------------------------------------------------------------
# Plan cache pickup
# ---------------------------------------------------------------------------

class TestPlanCache:
    def test_creating_ordered_index_reoptimizes(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, k INT)")
        for i in range(20):
            db.execute("INSERT INTO t (id, k) VALUES (?, ?)", (i, i % 5))
        stmt = parse("SELECT id FROM t WHERE k BETWEEN ? AND ?")
        before = db.executor.plan_for(stmt)
        db.execute("CREATE INDEX idx_k ON t (k) USING ORDERED")
        after = db.executor.plan_for(stmt)
        assert after is not before
        result = db.execute_parsed(stmt, (1, 2))
        assert result.rows_touched == 8  # 2 of 5 key groups

    def test_dropping_ordered_index_reoptimizes(self, events_db):
        stmt = parse("SELECT id FROM ev WHERE day > ?")
        ranged = events_db.executor.plan_for(stmt)
        events_db.execute("DROP INDEX idx_ev_day")
        replanned = events_db.executor.plan_for(stmt)
        assert replanned is not ranged
        result = events_db.execute_parsed(stmt, (5,))
        assert sorted(r[0] for r in result.rows) == [0, 4, 6]

    def test_options_object_feature_gates(self, events_db):
        events_db.optimizer_options = OptimizerOptions(sort_elision=False)
        plan = events_db.explain("SELECT id FROM ev ORDER BY day")
        assert "Sort" in plan and "sort elided" not in plan
        events_db.optimizer_options = OptimizerOptions(range_scans=False)
        plan = events_db.explain("SELECT id FROM ev WHERE day > 3")
        assert "IndexRangeScan" not in plan

    def test_range_scans_gate_holds_under_sort_elision(self, events_db):
        # A bounded walk IS a range scan: sort_elision alone must not
        # smuggle one in through the order-satisfaction branch.
        events_db.optimizer_options = OptimizerOptions(
            range_scans=False, sort_elision=True)
        plan = events_db.explain(
            "SELECT id FROM ev WHERE day >= 5 ORDER BY day")
        assert "bounds=" not in plan
        # a bound-free ordered walk is still allowed for elision
        assert "sort elided" in events_db.explain(
            "SELECT id FROM ev ORDER BY day")


# ---------------------------------------------------------------------------
# Type-mismatched bounds
# ---------------------------------------------------------------------------

class TestBoundTypeMismatch:
    def test_literal_mismatch_raises_sql_type_error(self, events_db):
        # Planning must not crash (the key-order statistic falls back to
        # the heuristic constant); execution surfaces the engine's usual
        # SqlTypeError, exactly as a scan-and-filter would.
        from repro.sqldb.errors import SqlTypeError
        with pytest.raises(SqlTypeError):
            events_db.execute("SELECT id FROM ev WHERE day < 'oops'")

    def test_param_mismatch_raises_sql_type_error(self, events_db):
        from repro.sqldb.errors import SqlTypeError
        with pytest.raises(SqlTypeError):
            events_db.execute("SELECT id FROM ev WHERE day < ?", ("oops",))

    def test_mismatch_on_empty_table_is_harmless(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, k INT)")
        db.execute("CREATE INDEX ik ON t (k) USING ORDERED")
        assert db.execute("SELECT id FROM t WHERE k < 'oops'").rows == []


# ---------------------------------------------------------------------------
# Multiple range conjuncts per side (bound intersection)
# ---------------------------------------------------------------------------

class TestRangeBoundIntersection:
    """``x > 5 AND x > 10`` must scan the ``x > 10`` region: literal
    bounds on the same side intersect to the tightest instead of the scan
    silently keeping the first (widest superset) it saw."""

    def test_redundant_lower_bounds_tighten(self, events_db):
        loose = events_db.execute(
            "SELECT id FROM ev WHERE day > 2 AND day > 4 AND day < 8")
        tight = events_db.execute("SELECT id FROM ev WHERE day > 4 AND day < 8")
        assert sorted(loose.rows) == sorted(tight.rows)
        assert loose.rows_touched == tight.rows_touched == 3

    def test_golden_explain_shows_tightest_bounds(self, events_db):
        plan = events_db.explain(
            "SELECT id FROM ev WHERE day > 2 AND day > 4 AND day < 8")
        assert "bounds='4 < day < 8'" in plan
        plan = events_db.explain(
            "SELECT id FROM ev WHERE day BETWEEN 3 AND 9 AND day < 6")
        assert "bounds='3 <= day < 6'" in plan

    def test_between_intersects_with_open_bound(self, events_db):
        result = events_db.execute(
            "SELECT id FROM ev WHERE day BETWEEN 3 AND 9 AND day < 6")
        assert sorted(r[0] for r in result.rows) == [1, 3, 7]
        assert result.rows_touched == 3  # days 3, 3, 5 only

    def test_equal_bounds_keep_exclusive(self, events_db):
        incl = events_db.execute("SELECT id FROM ev WHERE day >= 5")
        both = events_db.execute(
            "SELECT id FROM ev WHERE day >= 5 AND day > 5")
        assert both.rows_touched < incl.rows_touched
        assert sorted(r[0] for r in both.rows) == [0, 4, 6]

    def test_crossed_literal_bounds_scan_nothing(self, events_db):
        result = events_db.execute(
            "SELECT id FROM ev WHERE day > 6 AND day < 3")
        assert result.rows == [] and result.rows_touched == 0

    def test_literal_preferred_over_parameter(self, events_db):
        plan = events_db.explain(
            "SELECT id FROM ev WHERE day > ? AND day > 5")
        assert "bounds='day > 5'" in plan
        # The parameter conjunct stays as a residual filter: a tighter
        # runtime value still applies.
        result = events_db.execute(
            "SELECT id FROM ev WHERE day > ? AND day > 5", (8,))
        assert sorted(r[0] for r in result.rows) == [4]
        assert result.rows_touched == 3  # the day > 5 region
        loose = events_db.execute(
            "SELECT id FROM ev WHERE day > ? AND day > 5", (1,))
        assert sorted(r[0] for r in loose.rows) == [0, 4, 6]

    def test_two_parameter_bounds_keep_first(self, events_db):
        result = events_db.execute(
            "SELECT id FROM ev WHERE day > ? AND day > ?", (3, 6))
        assert sorted(r[0] for r in result.rows) == [0, 4, 6]

    def test_oracle_matches_seq_scan_baseline(self, events_db):
        """Differential: every multi-bound shape returns exactly the
        FROM-order (sequential scan + filter) rows and never touches more
        rows than the single tightest bound would."""
        baseline_db = Database()
        baseline_db.execute("CREATE TABLE ev (id INT PRIMARY KEY, day INT, "
                            "kind TEXT, val INT)")
        for row in events_db.query("SELECT id, day, kind, val FROM ev"):
            baseline_db.execute(
                "INSERT INTO ev (id, day, kind, val) VALUES (?, ?, ?, ?)",
                (row["id"], row["day"], row["kind"], row["val"]))
        queries = (
            ("SELECT id FROM ev WHERE day > 2 AND day > 4", ()),
            ("SELECT id FROM ev WHERE day < 9 AND day < 6 AND day < 7", ()),
            ("SELECT id FROM ev WHERE day >= 3 AND day > 3 AND day <= 7", ()),
            ("SELECT id FROM ev WHERE day BETWEEN 1 AND 9 "
             "AND day BETWEEN 3 AND 7", ()),
            ("SELECT id FROM ev WHERE day > ? AND day > 4 AND day < ?",
             (2, 8)),
            ("SELECT id FROM ev WHERE kind = 'a' AND day > 2 AND day > 4",
             ()),
        )
        for sql, params in queries:
            optimized = events_db.execute(sql, params)
            reference = baseline_db.execute(sql, params)
            assert sorted(optimized.rows) == sorted(reference.rows), sql
            assert optimized.rows_touched <= reference.rows_touched, sql


# ---------------------------------------------------------------------------
# Composite key-order statistics
# ---------------------------------------------------------------------------

class TestCompositeKeyOrderStats:
    """Suffix-column bounds under a literal equality prefix are priced by
    bisecting *within the prefix's key region* instead of falling back to
    the RANGE/BETWEEN constants."""

    @pytest.fixture
    def skewed_db(self):
        db = Database()
        db.execute("CREATE TABLE ev2 (id INT PRIMARY KEY, kind TEXT, "
                   "day INT)")
        db.execute("CREATE INDEX idx_kind_day ON ev2 (kind, day) "
                   "USING ORDERED")
        i = 0
        for d in range(10):       # kind 'a': days 0..9
            db.execute("INSERT INTO ev2 (id, kind, day) "
                       "VALUES (?, 'a', ?)", (i, d))
            i += 1
        for d in range(100):      # kind 'b': days 0..99
            db.execute("INSERT INTO ev2 (id, kind, day) "
                       "VALUES (?, 'b', ?)", (i, d))
            i += 1
        return db

    def test_fraction_is_exact_within_prefix_region(self, skewed_db):
        index = skewed_db.tables["ev2"].indexes["idx_kind_day"]
        assert index.prefix_range_fraction(("b",), None, 5, True,
                                           False) == 0.05
        assert index.prefix_range_fraction(("a",), None, 5, True,
                                           False) == 0.5
        assert index.prefix_range_fraction(("b",), 90, None, True,
                                           True) == 0.1

    def test_empty_prefix_region_prices_zero(self, skewed_db):
        index = skewed_db.tables["ev2"].indexes["idx_kind_day"]
        assert index.prefix_range_fraction(("zzz",), None, 5, True,
                                           False) == 0.0

    def test_empty_prefix_equals_leading_column_fraction(self, skewed_db):
        index = skewed_db.tables["ev2"].indexes["idx_kind_day"]
        assert index.prefix_range_fraction((), None, "b", True, False) == \
            index.range_fraction(None, "b", True, False)

    def test_incomparable_bound_falls_back(self, skewed_db):
        # An incomparable literal bound must not crash pricing: the cost
        # model catches the TypeError and keeps the heuristic constants
        # (the real type error still surfaces at execution).
        from repro.sqldb.errors import SqlTypeError
        plan = skewed_db.explain(
            "SELECT id FROM ev2 WHERE kind = 'b' AND day < 'oops'")
        assert "IndexRangeScan" in plan
        with pytest.raises(SqlTypeError):
            skewed_db.execute(
                "SELECT id FROM ev2 WHERE kind = 'b' AND day < 'oops'")

    def test_estimates_track_the_actual_region(self, skewed_db):
        """The estimated rows touched scales with the literal suffix
        bound — constants cannot do that."""
        narrow = skewed_db.explain(
            "SELECT id FROM ev2 WHERE kind = 'b' AND day < 5")
        wide = skewed_db.explain(
            "SELECT id FROM ev2 WHERE kind = 'b' AND day < 95")

        def touched(plan):
            line = next(l for l in plan.splitlines()
                        if "IndexRangeScan" in l)
            return int(line.rsplit("~", 1)[1].split(" ")[0])

        assert touched(narrow) < touched(wide)

    def test_parameter_prefix_keeps_heuristics(self, skewed_db):
        # A parameter prefix is unknown at plan time: pricing must not
        # crash and must keep working (constants), since one cached plan
        # serves every parameter value.
        plan = skewed_db.explain(
            "SELECT id FROM ev2 WHERE kind = ? AND day < 5")
        assert "IndexRangeScan" in plan

    def test_null_prefix_literal_prices_empty(self, skewed_db):
        from repro.sqldb.plan.access import ordered_scan_candidates
        from repro.sqldb.plan.cost import range_scan_estimate
        from repro.sqldb.parser import parse

        stmt = parse("SELECT id FROM ev2 WHERE kind = NULL AND day < 5")
        [cand] = [c for c in ordered_scan_candidates(
            skewed_db.tables["ev2"], stmt.where) if c.has_bounds]
        est = range_scan_estimate(skewed_db, "ev2", cand, stmt.where)
        assert est.cost == 1.0  # floored empty region
