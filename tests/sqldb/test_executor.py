import pytest

from repro.sqldb.errors import (
    CatalogError, ConstraintError, SqlError, SqlTypeError,
)


def names(rows, key="name"):
    return [r[key] for r in rows]


class TestSelect:
    def test_where_filter(self, people_db):
        rows = people_db.query("SELECT name FROM person WHERE age > 30")
        assert sorted(names(rows)) == ["alice", "carol"]

    def test_null_never_matches_comparison(self, people_db):
        rows = people_db.query("SELECT name FROM person WHERE age < 100")
        assert "dave" not in names(rows)

    def test_is_null(self, people_db):
        rows = people_db.query(
            "SELECT name FROM person WHERE age IS NULL")
        assert names(rows) == ["dave"]

    def test_order_by_desc_with_nulls(self, people_db):
        rows = people_db.query("SELECT name, age FROM person ORDER BY age")
        assert names(rows)[0] == "dave"  # NULL sorts first ascending

    def test_limit_offset(self, people_db):
        rows = people_db.query(
            "SELECT id FROM person ORDER BY id LIMIT 2 OFFSET 1")
        assert [r["id"] for r in rows] == [2, 3]

    def test_distinct(self, people_db):
        rows = people_db.query("SELECT DISTINCT city FROM person")
        assert len(rows) == 3

    def test_in_list(self, people_db):
        rows = people_db.query(
            "SELECT name FROM person WHERE id IN (1, 3)")
        assert sorted(names(rows)) == ["alice", "carol"]

    def test_like(self, people_db):
        rows = people_db.query(
            "SELECT name FROM person WHERE name LIKE '%a%'")
        assert sorted(names(rows)) == ["alice", "carol", "dave"]

    def test_between(self, people_db):
        rows = people_db.query(
            "SELECT name FROM person WHERE age BETWEEN 28 AND 34")
        assert sorted(names(rows)) == ["alice", "bob"]

    def test_expression_projection(self, people_db):
        rows = people_db.query(
            "SELECT age + 1 AS next_age FROM person WHERE id = 1")
        assert rows[0]["next_age"] == 35

    def test_scalar_functions(self, people_db):
        rows = people_db.query(
            "SELECT UPPER(name) AS u, LENGTH(city) AS l "
            "FROM person WHERE id = 2")
        assert rows[0] == {"u": "BOB", "l": 3}

    def test_params(self, people_db):
        rows = people_db.query(
            "SELECT name FROM person WHERE city = ? AND age > ?",
            ("boston", 35))
        assert names(rows) == ["carol"]

    def test_missing_param_raises(self, people_db):
        with pytest.raises(SqlError):
            people_db.query("SELECT name FROM person WHERE id = ?")

    def test_unknown_column_raises(self, people_db):
        with pytest.raises(SqlError):
            people_db.query("SELECT nope FROM person")

    def test_unknown_table_raises(self, people_db):
        with pytest.raises(CatalogError):
            people_db.query("SELECT 1 FROM nope")


class TestJoins:
    def test_inner_join(self, people_db):
        rows = people_db.query(
            "SELECT p.name, q.species FROM person p "
            "JOIN pet q ON p.id = q.owner_id ORDER BY q.id")
        assert rows[0] == {"name": "alice", "species": "cat"}
        assert len(rows) == 4

    def test_left_join_keeps_unmatched(self, people_db):
        rows = people_db.query(
            "SELECT p.name, q.id FROM person p "
            "LEFT JOIN pet q ON p.id = q.owner_id WHERE q.id IS NULL")
        assert names(rows) == ["dave"]

    def test_join_with_filter(self, people_db):
        rows = people_db.query(
            "SELECT p.name FROM person p JOIN pet q ON p.id = q.owner_id "
            "WHERE q.species = 'cat'")
        assert sorted(names(rows)) == ["alice", "bob"]

    def test_ambiguous_column_raises(self, people_db):
        with pytest.raises(SqlError):
            people_db.query(
                "SELECT id FROM person p JOIN pet q ON p.id = q.owner_id")


class TestAggregates:
    def test_count_star(self, people_db):
        rows = people_db.query("SELECT COUNT(*) AS n FROM person")
        assert rows[0]["n"] == 4

    def test_count_ignores_nulls(self, people_db):
        rows = people_db.query("SELECT COUNT(age) AS n FROM person")
        assert rows[0]["n"] == 3

    def test_sum_avg_min_max(self, people_db):
        rows = people_db.query(
            "SELECT SUM(age) AS s, AVG(age) AS a, MIN(age) AS lo, "
            "MAX(age) AS hi FROM person")
        assert rows[0]["s"] == 103
        assert rows[0]["a"] == pytest.approx(103 / 3)
        assert (rows[0]["lo"], rows[0]["hi"]) == (28, 41)

    def test_group_by_with_having(self, people_db):
        rows = people_db.query(
            "SELECT city, COUNT(*) AS n FROM person GROUP BY city "
            "HAVING COUNT(*) > 1")
        assert rows == [{"city": "boston", "n": 2}]

    def test_count_distinct(self, people_db):
        rows = people_db.query(
            "SELECT COUNT(DISTINCT species) AS n FROM pet")
        assert rows[0]["n"] == 3

    def test_aggregate_on_empty_table(self, db):
        db.execute("CREATE TABLE e (id INT PRIMARY KEY, v INT)")
        rows = db.query("SELECT COUNT(*) AS n, SUM(v) AS s FROM e")
        assert rows[0] == {"n": 0, "s": None}


class TestWrites:
    def test_insert_and_rowcount(self, people_db):
        result = people_db.execute(
            "INSERT INTO person (id, name) VALUES (5, 'erin'), (6, 'finn')")
        assert result.rowcount == 2
        assert people_db.table_size("person") == 6

    def test_insert_duplicate_pk_raises(self, people_db):
        with pytest.raises(ConstraintError):
            people_db.execute(
                "INSERT INTO person (id, name) VALUES (1, 'dup')")

    def test_insert_null_into_not_null_raises(self, people_db):
        with pytest.raises(ConstraintError):
            people_db.execute(
                "INSERT INTO person (id, name) VALUES (9, NULL)")

    def test_insert_type_mismatch_raises(self, people_db):
        with pytest.raises(SqlTypeError):
            people_db.execute(
                "INSERT INTO person (id, name) VALUES ('x', 'bad')")

    def test_update_with_expression(self, people_db):
        result = people_db.execute(
            "UPDATE person SET age = age + 1 WHERE city = 'boston'")
        assert result.rowcount == 2
        rows = people_db.query(
            "SELECT age FROM person WHERE id = 1")
        assert rows[0]["age"] == 35

    def test_update_pk_lookup_touches_one_row(self, people_db):
        result = people_db.execute(
            "UPDATE person SET city = 'la' WHERE id = 2")
        assert result.rows_touched == 1

    def test_delete(self, people_db):
        result = people_db.execute("DELETE FROM person WHERE age IS NULL")
        assert result.rowcount == 1
        assert people_db.table_size("person") == 3

    def test_delete_all(self, people_db):
        people_db.execute("DELETE FROM pet")
        assert people_db.table_size("pet") == 0

    def test_drop_table(self, people_db):
        people_db.execute("DROP TABLE pet")
        with pytest.raises(CatalogError):
            people_db.query("SELECT * FROM pet")


class TestIndexUse:
    def test_pk_lookup_rows_touched(self, people_db):
        result = people_db.execute("SELECT * FROM person WHERE id = 3")
        assert result.rows_touched == 1

    def test_secondary_index_lookup(self, people_db):
        result = people_db.execute(
            "SELECT * FROM pet WHERE owner_id = ?", (1,))
        assert result.rowcount == 2
        assert result.rows_touched == 2  # index hit, not a scan

    def test_full_scan_touches_all(self, people_db):
        result = people_db.execute(
            "SELECT * FROM pet WHERE species = 'cat'")
        assert result.rows_touched == 4

    def test_index_updated_on_update(self, people_db):
        people_db.execute("UPDATE pet SET owner_id = 3 WHERE id = 10")
        result = people_db.execute(
            "SELECT * FROM pet WHERE owner_id = ?", (3,))
        assert result.rowcount == 2

    def test_unique_index_violation(self, db):
        db.execute("CREATE TABLE u (id INT PRIMARY KEY, code TEXT)")
        db.execute("CREATE UNIQUE INDEX uq ON u (code)")
        db.execute("INSERT INTO u (id, code) VALUES (1, 'a')")
        with pytest.raises(ConstraintError):
            db.execute("INSERT INTO u (id, code) VALUES (2, 'a')")
