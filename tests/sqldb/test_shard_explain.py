"""Golden EXPLAIN plans for routed statements on a sharded backend.

These lock the router's classification (single-shard / scatter / gather),
the merge strategy annotations (k-way ordered merge keys, per-shard LIMIT
pushdown, coordinator gather) and the inner per-shard plan, so any change
to routing rules or the scatter rewrite surfaces as a readable plan diff.

The database is built fresh at module scope with deterministic seed data
so inner-plan row estimates cannot drift with test execution order.
"""

import pytest

from repro.sqldb.shard import PartitionSpec, ShardTopology, ShardedDatabase


@pytest.fixture(scope="module")
def sharded_db():
    topology = ShardTopology(4, {"t": PartitionSpec("grp"),
                                 "child": PartitionSpec("grp")})
    db = ShardedDatabase(topology)
    db.execute_script("""
        CREATE TABLE t (id INTEGER PRIMARY KEY, grp INT, val INT);
        CREATE TABLE child (id INTEGER PRIMARY KEY, grp INT, note TEXT);
        CREATE TABLE lk (id INTEGER PRIMARY KEY, label TEXT);
    """)
    for i in range(20):
        db.execute("INSERT INTO t (id, grp, val) VALUES (?, ?, ?)",
                   (i, i % 5, i * 3 % 7))
        db.execute("INSERT INTO child (id, grp, note) VALUES (?, ?, ?)",
                   (i, i % 5, f"n{i}"))
    for i in range(5):
        db.execute("INSERT INTO lk (id, label) VALUES (?, ?)", (i, f"l{i}"))
    return db


def assert_plan(db, sql, expected, params=None):
    assert db.explain(sql, params) == expected.strip("\n")


# ---------------------------------------------------------------------------
# Single-shard routes
# ---------------------------------------------------------------------------

def test_partition_key_point_lookup_routes_to_one_shard(sharded_db):
    """Partition-key equality resolves at routing time — one shard runs
    the unmodified statement.  Inside the owning shard every row shares
    that grp value, and the snapshot distinct count (one value) prices the
    filter at all four rows."""
    assert_plan(sharded_db, "SELECT id, grp, val FROM t WHERE grp = ?", """
ShardRouting [kind='single', shard=3, key match on t.grp]
  Project
    Filter [predicate=BinaryOp(op='=', left=ColumnRef(table=None, column='grp'), right=Param(index=0))] (~4 rows, ~4 touched)
      Scan [table='t', alias='t'] (~4 rows, ~4 touched)
""", params=(3,))


def test_co_partitioned_join_stays_single_shard(sharded_db):
    """An INNER join of two tables partitioned on the same key, pinned by
    an equality on that key, runs entirely on the owning shard."""
    assert_plan(sharded_db, (
        "SELECT t.id, c.note FROM t JOIN child c "
        "ON t.grp = c.grp AND t.id = c.id WHERE t.grp = 2"), """
ShardRouting [kind='single', shard=2, key match on child.grp, t.grp]
  Project
    Filter [predicate=BinaryOp(op='=', left=ColumnRef(table='t', column='grp'), right=ColumnRef(table='c', column='grp'))] (~1 rows, ~8 touched)
      Join [kind='INNER', table='child', strategy='index', index_name='<pk>'] (~1 rows, ~8 touched)
        Filter [predicate=BinaryOp(op='=', left=ColumnRef(table='t', column='grp'), right=Literal(value=2))] (~4 rows, ~4 touched)
          Scan [table='t', alias='t'] (~4 rows, ~4 touched)
""")


# ---------------------------------------------------------------------------
# Scatter-gather with merge
# ---------------------------------------------------------------------------

def test_scatter_with_ordered_merge(sharded_db):
    """An unrestricted ordered read scatters to every shard; the
    coordinator k-way-merges the per-shard ordered streams on the output
    positions of the ORDER BY keys."""
    assert_plan(sharded_db, "SELECT id, grp, val FROM t ORDER BY val DESC, id", """
ShardRouting [kind='scatter', shards=[0, 1, 2, 3], distributive over all shards]
ShardMerge [k-way ordered merge on (2 DESC, 0)]
  Sort [order_by=[OrderItem(expr=ColumnRef(table=None, column='val'), descending=True), OrderItem(expr=ColumnRef(table=None, column='id'), descending=False)]]
    Project
      Scan [table='t', alias='t'] (~8 rows, ~8 touched)
""")


def test_aggregate_gathers_to_coordinator(sharded_db):
    """Global grouping is not distributive: the partitioned table is
    pulled to the coordinator, which runs the original plan locally."""
    assert_plan(sharded_db, "SELECT grp, COUNT(*) FROM t GROUP BY grp", """
ShardRouting [kind='gather', shards=[0, 1, 2, 3], reason='GROUP BY/HAVING needs global grouping']
ShardGather [pull t to coordinator, execute locally]
  Aggregate [group_by=[ColumnRef(table=None, column='grp')]]
    Scan [table='t', alias='t'] (~20 rows, ~20 touched)
""")


# ---------------------------------------------------------------------------
# Scatter with LIMIT pushdown
# ---------------------------------------------------------------------------

def test_scatter_limit_pushdown(sharded_db):
    """The literal LIMIT is pushed per shard: each shard returns at most
    5 rows and the merge applies the global cut."""
    assert_plan(sharded_db, "SELECT id, val FROM t ORDER BY id LIMIT 5", """
ShardRouting [kind='scatter', shards=[0, 1, 2, 3], distributive over all shards]
ShardMerge [k-way ordered merge on (0)]
ShardLimit [pushdown: LIMIT 5 per shard]
  Limit
    Sort [order_by=[OrderItem(expr=ColumnRef(table=None, column='id'), descending=False)]]
      Project
        Scan [table='t', alias='t'] (~8 rows, ~8 touched)
""")


def test_scatter_limit_offset_pushdown_widens_per_shard_cut(sharded_db):
    """LIMIT 3 OFFSET 2 pushes LIMIT 5 per shard (any shard might hold
    all of the skipped prefix); the merge applies the exact global
    offset and limit."""
    assert_plan(sharded_db, (
        "SELECT id, val FROM t WHERE val > 2 "
        "ORDER BY val, id LIMIT 3 OFFSET 2"), """
ShardRouting [kind='scatter', shards=[0, 1, 2, 3], distributive over all shards]
ShardMerge [k-way ordered merge on (1, 0)]
ShardLimit [pushdown: LIMIT 5 per shard]
  Limit
    Sort [order_by=[OrderItem(expr=ColumnRef(table=None, column='val'), descending=False), OrderItem(expr=ColumnRef(table=None, column='id'), descending=False)]]
      Project
        Filter [predicate=BinaryOp(op='>', left=ColumnRef(table=None, column='val'), right=Literal(value=2))] (~5 rows, ~8 touched)
          Scan [table='t', alias='t'] (~8 rows, ~8 touched)
""")


# ---------------------------------------------------------------------------
# Broadcast reads and writes
# ---------------------------------------------------------------------------

def test_broadcast_read_pins_deterministically(sharded_db):
    plan = sharded_db.explain("SELECT id, label FROM lk WHERE id = ?",
                              params=(1,))
    first = plan.splitlines()[0]
    assert first.startswith("ShardRouting [kind='broadcast_read'")
    assert sharded_db.explain("SELECT id, label FROM lk WHERE id = ?",
                              params=(1,)) == plan


def test_write_explains_name_their_targets(sharded_db):
    single = sharded_db.explain("UPDATE t SET val = 0 WHERE grp = 1")
    assert single.splitlines()[0].startswith(
        "ShardRouting [kind='primary_write'")
    broadcast = sharded_db.explain("UPDATE lk SET label = 'x' WHERE id = 1")
    assert broadcast.splitlines()[0].startswith(
        "ShardRouting [kind='broadcast_write'")
