import pytest

from repro.sqldb.errors import SqlParseError
from repro.sqldb.lexer import (
    EOF, IDENT, KEYWORD, NUMBER, OP, PARAM, STRING, tokenize,
)


def kinds(sql):
    return [t.kind for t in tokenize(sql)]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


def test_keywords_are_case_insensitive():
    assert values("select SELECT SeLeCt") == ["SELECT"] * 3


def test_identifiers_preserve_case():
    tokens = tokenize("myTable")
    assert tokens[0].kind == IDENT
    assert tokens[0].value == "myTable"


def test_numbers_int_and_float():
    tokens = tokenize("42 3.14 .5")
    assert tokens[0].value == 42
    assert tokens[1].value == pytest.approx(3.14)
    assert tokens[2].value == pytest.approx(0.5)


def test_string_literal_with_escape():
    tokens = tokenize("'it''s'")
    assert tokens[0].kind == STRING
    assert tokens[0].value == "it's"


def test_unterminated_string_raises():
    with pytest.raises(SqlParseError):
        tokenize("'oops")


def test_two_char_operators():
    assert values("<= >= <> != ||") == ["<=", ">=", "<>", "<>", "||"]


def test_params_and_ops():
    assert kinds("? + ?") == [PARAM, OP, PARAM, EOF]


def test_line_comments_are_skipped():
    assert values("SELECT -- comment\n 1") == ["SELECT", 1]


def test_unexpected_character_raises_with_position():
    with pytest.raises(SqlParseError) as excinfo:
        tokenize("SELECT @")
    assert excinfo.value.position == 7


def test_ends_with_eof():
    assert tokenize("")[-1].kind == EOF


def test_keyword_vs_ident_mix():
    tokens = tokenize("SELECT name FROM users")
    assert [t.kind for t in tokens[:-1]] == [KEYWORD, IDENT, KEYWORD, IDENT]
