import pytest

from repro.sqldb.errors import TransactionError


def test_rollback_undoes_insert(people_db):
    people_db.execute("BEGIN")
    people_db.execute("INSERT INTO person (id, name) VALUES (9, 'zoe')")
    people_db.execute("ROLLBACK")
    assert people_db.table_size("person") == 4


def test_rollback_undoes_update(people_db):
    people_db.execute("BEGIN")
    people_db.execute("UPDATE person SET age = 99 WHERE id = 1")
    people_db.execute("ROLLBACK")
    assert people_db.query(
        "SELECT age FROM person WHERE id = 1")[0]["age"] == 34


def test_rollback_undoes_delete_and_restores_indexes(people_db):
    people_db.execute("BEGIN")
    people_db.execute("DELETE FROM pet WHERE owner_id = 1")
    people_db.execute("ROLLBACK")
    result = people_db.execute("SELECT * FROM pet WHERE owner_id = ?", (1,))
    assert result.rowcount == 2


def test_commit_persists(people_db):
    people_db.execute("BEGIN")
    people_db.execute("INSERT INTO person (id, name) VALUES (9, 'zoe')")
    people_db.execute("COMMIT")
    assert people_db.table_size("person") == 5


def test_rollback_multiple_operations_in_reverse(people_db):
    people_db.execute("BEGIN")
    people_db.execute("UPDATE person SET age = 1 WHERE id = 1")
    people_db.execute("UPDATE person SET age = 2 WHERE id = 1")
    people_db.execute("DELETE FROM person WHERE id = 2")
    people_db.execute("ROLLBACK")
    rows = people_db.query("SELECT age FROM person WHERE id = 1")
    assert rows[0]["age"] == 34
    assert people_db.table_size("person") == 4


def test_nested_begin_raises(people_db):
    people_db.execute("BEGIN")
    with pytest.raises(TransactionError):
        people_db.execute("BEGIN")


def test_commit_without_begin_raises(people_db):
    with pytest.raises(TransactionError):
        people_db.execute("COMMIT")


def test_rollback_without_begin_raises(people_db):
    with pytest.raises(TransactionError):
        people_db.execute("ROLLBACK")


def test_autocommit_outside_transaction(people_db):
    people_db.execute("UPDATE person SET age = 50 WHERE id = 1")
    # No transaction: change is permanent, and no undo state lingers.
    assert not people_db.transactions.in_transaction
    assert people_db.query(
        "SELECT age FROM person WHERE id = 1")[0]["age"] == 50


def test_rollback_undoes_truncate(people_db):
    people_db.execute("BEGIN")
    assert people_db.execute("TRUNCATE TABLE pet").rowcount == 4
    assert people_db.table_size("pet") == 0
    people_db.execute("ROLLBACK")
    assert people_db.table_size("pet") == 4
    # Secondary indexes are restored along with the rows.
    result = people_db.execute("SELECT id FROM pet WHERE owner_id = ?", (1,))
    assert result.rowcount == 2
    assert result.rows_touched == 2  # still index-served
