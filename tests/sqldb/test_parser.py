import pytest

from repro.sqldb import ast_nodes as A
from repro.sqldb.errors import SqlParseError
from repro.sqldb.parser import is_read_statement, parse


def test_simple_select():
    stmt = parse("SELECT a, b FROM t")
    assert isinstance(stmt, A.Select)
    assert stmt.table.name == "t"
    assert len(stmt.items) == 2


def test_select_star():
    stmt = parse("SELECT * FROM t")
    assert isinstance(stmt.items[0].expr, A.Star)


def test_qualified_star():
    stmt = parse("SELECT u.* FROM users u")
    assert stmt.items[0].expr.table == "u"


def test_aliases():
    stmt = parse("SELECT a AS x, b y FROM t AS tt")
    assert stmt.items[0].alias == "x"
    assert stmt.items[1].alias == "y"
    assert stmt.table.alias == "tt"


def test_where_precedence_or_and():
    stmt = parse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
    assert isinstance(stmt.where, A.BinaryOp)
    assert stmt.where.op == "OR"
    assert stmt.where.right.op == "AND"


def test_joins():
    stmt = parse("SELECT a FROM t JOIN s ON t.id = s.tid "
                 "LEFT JOIN r ON s.id = r.sid")
    assert [j.kind for j in stmt.joins] == ["INNER", "LEFT"]


def test_group_by_having_order_limit():
    stmt = parse("SELECT city, COUNT(*) AS n FROM t GROUP BY city "
                 "HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 5 OFFSET 2")
    assert len(stmt.group_by) == 1
    assert stmt.having is not None
    assert stmt.order_by[0].descending
    assert stmt.limit == A.Literal(5)
    assert stmt.offset == A.Literal(2)


def test_in_like_between_is_null():
    stmt = parse("SELECT a FROM t WHERE a IN (1, 2) AND b LIKE 'x%' "
                 "AND c BETWEEN 1 AND 5 AND d IS NOT NULL")
    text = repr(stmt.where)
    assert "InList" in text and "Like" in text
    assert "Between" in text and "IsNull" in text


def test_not_in():
    stmt = parse("SELECT a FROM t WHERE a NOT IN (1)")
    assert stmt.where.negated


def test_params_are_indexed_in_order():
    stmt = parse("SELECT a FROM t WHERE x = ? AND y = ?")
    params = []

    def walk(node):
        if isinstance(node, A.Param):
            params.append(node.index)
        elif isinstance(node, A.BinaryOp):
            walk(node.left)
            walk(node.right)

    walk(stmt.where)
    assert params == [0, 1]


def test_insert_multi_row():
    stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
    assert isinstance(stmt, A.Insert)
    assert stmt.columns == ["a", "b"]
    assert len(stmt.rows) == 2


def test_update():
    stmt = parse("UPDATE t SET a = a + 1, b = ? WHERE id = 3")
    assert isinstance(stmt, A.Update)
    assert len(stmt.assignments) == 2


def test_delete():
    stmt = parse("DELETE FROM t WHERE id = 1")
    assert isinstance(stmt, A.Delete)


def test_create_table_with_constraints():
    stmt = parse("CREATE TABLE t (id INT PRIMARY KEY, "
                 "name VARCHAR(100) NOT NULL, age INT)")
    assert stmt.columns[0].primary_key
    assert stmt.columns[1].not_null
    assert not stmt.columns[2].not_null


def test_create_index_unique():
    stmt = parse("CREATE UNIQUE INDEX i ON t (a, b)")
    assert stmt.unique
    assert stmt.columns == ["a", "b"]


def test_transaction_statements():
    assert isinstance(parse("BEGIN"), A.Begin)
    assert isinstance(parse("COMMIT"), A.Commit)
    assert isinstance(parse("ROLLBACK"), A.Rollback)


def test_drop_index():
    stmt = parse("DROP INDEX idx_t_a")
    assert isinstance(stmt, A.DropIndex)
    assert stmt.name == "idx_t_a"


def test_truncate_with_and_without_table_keyword():
    assert parse("TRUNCATE TABLE t") == A.Truncate("t")
    assert parse("TRUNCATE t") == A.Truncate("t")


def test_is_read_statement():
    assert is_read_statement("SELECT 1 FROM t")
    assert not is_read_statement("DELETE FROM t")


def test_parse_cache_returns_same_object():
    assert parse("SELECT a FROM cache_test") is parse(
        "SELECT a FROM cache_test")


def test_parse_cache_is_lru_with_stats():
    from repro.sqldb.parser import parse_cache_stats

    before = parse_cache_stats()
    parse("SELECT a FROM lru_test_1")
    parse("SELECT a FROM lru_test_1")
    after = parse_cache_stats()
    assert after["hits"] >= before["hits"] + 1
    assert after["misses"] >= before["misses"] + 1
    assert after["size"] <= 4096


def test_trailing_garbage_raises():
    with pytest.raises(SqlParseError):
        parse("SELECT a FROM t extra ,")


def test_unknown_function_raises():
    with pytest.raises(SqlParseError):
        parse("SELECT nosuchfn(a) FROM t")


def test_arithmetic_precedence():
    stmt = parse("SELECT a + b * c FROM t")
    expr = stmt.items[0].expr
    assert expr.op == "+"
    assert expr.right.op == "*"
