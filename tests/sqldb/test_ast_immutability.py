"""Regression: planning/optimization must never mutate a cached AST.

The process-wide parse cache (:mod:`repro.sqldb.parser`) hands the *same*
statement objects to every ``Database`` in the process — the executor's
plan cache and the cross-request result cache both pin them by identity.
If any optimizer rule wrote through to a shared AST node (say, merging a
pushed-down conjunct into ``stmt.joins[i].condition`` instead of the
logical Join's own ``condition``), one database's planning would corrupt
every other consumer of that SQL string.  These tests plan and execute
identical SQL strings on databases with *different* index sets — the
configurations that drive the rules down different paths — and assert the
AST is byte-identical (by recursive structural fingerprint) afterwards.
"""

from repro.sqldb import Database
from repro.sqldb import ast_nodes as A
from repro.sqldb.parser import parse

DDL = """
CREATE TABLE usr (id INT PRIMARY KEY, login TEXT, grp INT);
CREATE TABLE issue (id INT PRIMARY KEY, owner_id INT, sev INT, day INT)
"""

QUERIES = (
    # Pushdown + access-path selection on the base of a join chain.
    ("SELECT u.login, i.id FROM usr u JOIN issue i ON i.owner_id = u.id "
     "WHERE u.grp = ? AND i.sev = 2", (1,)),
    # Reordering (the chain may re-base), residual ON splitting.
    ("SELECT u.login FROM usr u JOIN issue i "
     "ON i.owner_id = u.id AND i.sev > 1 WHERE i.day BETWEEN 2 AND 8",
     ()),
    # Ordered access + sort elision + limit hint.
    ("SELECT id, day FROM issue WHERE day > 1 AND day > 3 AND day < 9 "
     "ORDER BY day LIMIT 4", ()),
    # LEFT join barrier + WHERE above the chain.
    ("SELECT u.login, i.id FROM usr u LEFT JOIN issue i "
     "ON i.owner_id = u.id WHERE u.grp < 2 ORDER BY u.id DESC", ()),
)


def _fingerprint(node):
    """Deep structural fingerprint of an AST node (field names + values,
    recursively), independent of object identity."""
    if isinstance(node, A.Node):
        return (type(node).__name__,) + tuple(
            (field, _fingerprint(getattr(node, field)))
            for field in node._fields)
    if isinstance(node, (list, tuple)):
        return tuple(_fingerprint(item) for item in node)
    return node


def _seeded(indexes):
    db = Database()
    db.execute_script(DDL)
    for ddl in indexes:
        db.execute(ddl)
    for i in range(12):
        db.execute("INSERT INTO usr (id, login, grp) VALUES (?, ?, ?)",
                   (i, f"u{i}", i % 3))
    for i in range(40):
        db.execute(
            "INSERT INTO issue (id, owner_id, sev, day) "
            "VALUES (?, ?, ?, ?)", (i, i % 12, i % 4, i % 10))
    return db


INDEX_SETS = (
    (),  # no secondary indexes: scans everywhere
    ("CREATE INDEX idx_issue_owner ON issue (owner_id)",
     "CREATE INDEX idx_usr_grp ON usr (grp)"),
    ("CREATE INDEX idx_issue_day ON issue (day) USING ORDERED",
     "CREATE INDEX idx_issue_sev_day ON issue (sev, day) USING ORDERED"),
)


class TestSharedAstIsolation:
    def test_planning_leaves_cached_ast_untouched(self):
        databases = [_seeded(indexes) for indexes in INDEX_SETS]
        for sql, params in QUERIES:
            stmt = parse(sql)
            before = _fingerprint(stmt)
            for db in databases:
                assert parse(sql) is stmt  # truly shared via the cache
                db.explain(sql)
                db.execute(sql, params)
                assert _fingerprint(stmt) == before, (sql, db.name)

    def test_results_unaffected_by_other_databases_planning(self):
        """Interleaved planning across index configurations: every
        database keeps producing the rows it produced in isolation."""
        databases = [_seeded(indexes) for indexes in INDEX_SETS]
        isolated = [
            [sorted(_seeded(indexes).execute(sql, params).rows)
             for sql, params in QUERIES]
            for indexes in INDEX_SETS
        ]
        for round_trip in range(2):
            for qi, (sql, params) in enumerate(QUERIES):
                for di, db in enumerate(databases):
                    got = sorted(db.execute(sql, params).rows)
                    assert got == isolated[di][qi], (sql, di, round_trip)

    def test_write_statements_share_safely(self):
        """UPDATE/DELETE go through the access-path machinery too — the
        shared AST must survive candidate-row search on differently
        indexed databases (executed inside a rolled-back transaction so
        the data stays comparable)."""
        databases = [_seeded(indexes) for indexes in INDEX_SETS]
        for sql, params in (
                ("UPDATE issue SET sev = 0 WHERE day > 2 AND day < 7", ()),
                ("DELETE FROM issue WHERE owner_id = ? AND sev = 1", (3,)),
        ):
            stmt = parse(sql)
            before = _fingerprint(stmt)
            for db in databases:
                db.execute("BEGIN")
                db.execute(sql, params)
                db.execute("ROLLBACK")
                assert _fingerprint(stmt) == before, (sql, db.name)
