"""Golden EXPLAIN plans for representative itracker / OpenMRS / TPC-C
statements.

These lock the optimizer's chosen join order (tree nesting), join strategy
(hash / index / nested), access path and cost annotations over the
deterministic seeded app databases, so any optimizer or cost-model change
surfaces as a readable plan diff rather than a silent perf regression.

The databases are built fresh at module scope (not the shared session
fixtures) so plan estimates cannot drift with test execution order.
"""

import pytest

from repro.sqldb import Database


@pytest.fixture(scope="module")
def itracker_db():
    from repro.apps import itracker

    db, _ = itracker.build_app()
    return db


@pytest.fixture(scope="module")
def openmrs_db():
    from repro.apps import openmrs

    db, _ = openmrs.build_app()
    return db


@pytest.fixture(scope="module")
def tpcc_db():
    from repro.apps.tpcc import data

    db = Database("tpcc")
    data.seed(db)
    return db


def assert_plan(db, sql, expected):
    assert db.explain(sql) == expected.strip("\n")


# ---------------------------------------------------------------------------
# itracker
# ---------------------------------------------------------------------------

def test_itracker_project_issue_listing(itracker_db):
    assert_plan(itracker_db, (
        "SELECT i.id, i.description, u.login FROM it_issue i "
        "JOIN it_user u ON i.creator_id = u.id WHERE i.project_id = ?"), """
Project
  Join [kind='INNER', table='it_user', strategy='hash'] (~50 rows, ~70 touched)
    Filter [predicate=BinaryOp(op='=', left=ColumnRef(table='i', column='project_id'), right=Param(index=0))] (~50 rows, ~50 touched)
      IndexLookup [table='it_issue', candidates=['idx_it_issue_project_id']] (~50 rows, ~50 touched)
""")


def test_itracker_severe_issue_report_reorders_to_project(itracker_db):
    """Three-way join: the optimizer re-bases the chain on the pinned
    project (PK lookup), probes issues through the project-id index, then
    resolves creators per row through the user PK.  The severity filter's
    selectivity comes from the snapshot distinct count (a handful of
    severity levels), not the old rows//10 heuristic, so the estimate is
    ~12 surviving issues rather than ~1."""
    assert_plan(itracker_db, (
        "SELECT p.name, i.id, u.login FROM it_project p "
        "JOIN it_issue i ON i.project_id = p.id "
        "JOIN it_user u ON i.creator_id = u.id "
        "WHERE p.id = ? AND i.severity = ?"), """
Project
  Join [kind='INNER', table='it_user', strategy='index', index_name='<pk>'] (~12 rows, ~64 touched)
    Filter [predicate=BinaryOp(op='=', left=ColumnRef(table='i', column='severity'), right=Param(index=1))] (~12 rows, ~51 touched)
      Join [kind='INNER', table='it_issue', strategy='index', index_name='idx_it_issue_project_id'] (~12 rows, ~51 touched)
        Filter [predicate=BinaryOp(op='=', left=ColumnRef(table='p', column='id'), right=Param(index=0))] (~1 rows, ~1 touched)
          IndexLookup [table='it_project', candidates=['<pk>']] (~1 rows, ~1 touched)
""")


def test_itracker_user_history_audit(itracker_db):
    assert_plan(itracker_db, (
        "SELECT h.id, h.action, u.login FROM it_history h "
        "JOIN it_user u ON h.user_id = u.id WHERE h.user_id = ?"), """
Project
  Join [kind='INNER', table='it_user', strategy='hash'] (~50 rows, ~70 touched)
    Filter [predicate=BinaryOp(op='=', left=ColumnRef(table='h', column='user_id'), right=Param(index=0))] (~50 rows, ~50 touched)
      IndexLookup [table='it_history', candidates=['idx_it_history_user_id']] (~50 rows, ~50 touched)
""")


def test_itracker_stale_project_issues_prefix_plus_range(itracker_db):
    """Equality prefix + range suffix on the two-column ordered index:
    project_id pins the prefix, the date bound walks the suffix, and the
    delivered order makes the ORDER BY sort redundant."""
    assert_plan(itracker_db, (
        "SELECT i.id, i.description FROM it_issue i "
        "WHERE i.project_id = ? AND i.last_modified < ? "
        "ORDER BY i.last_modified"), """
Project
  Filter [predicate=BinaryOp(op='AND', left=BinaryOp(op='=', left=ColumnRef(table='i', column='project_id'), right=Param(index=0)), right=BinaryOp(op='<', left=ColumnRef(table='i', column='last_modified'), right=Param(index=1)))] (~15 rows, ~15 touched)
    IndexRangeScan [table='it_issue', index='idx_it_issue_proj_modified', eq='project_id = ?', bounds='last_modified < ?', order='last_modified ASC (sort elided)'] (~15 rows, ~15 touched)
""")


def test_itracker_latest_issues_page_descending_top_n(itracker_db):
    """Top-N-by-date page: a literal-bounded range scan (the key-order
    statistic prices the bound), walked descending so the DESC sort is
    elided; with the Sort gone and a LIMIT above, execution stops after
    the first limit+offset rows."""
    assert_plan(itracker_db, (
        "SELECT i.id, i.description, u.login FROM it_issue i "
        "JOIN it_user u ON i.creator_id = u.id "
        "WHERE i.last_modified >= '2014-07-01' "
        "ORDER BY i.last_modified DESC LIMIT 10"), """
Limit
  Project
    Join [kind='INNER', table='it_user', strategy='hash'] (~167 rows, ~187 touched)
      Filter [predicate=BinaryOp(op='>=', left=ColumnRef(table='i', column='last_modified'), right=Literal(value='2014-07-01'))] (~167 rows, ~167 touched)
        IndexRangeScan [table='it_issue', index='idx_it_issue_modified', bounds='last_modified >= '2014-07-01'', order='last_modified DESC (sort elided)'] (~167 rows, ~167 touched)
""")


def test_itracker_user_by_pk(itracker_db):
    assert_plan(itracker_db, "SELECT login FROM it_user WHERE id = ?", """
Project
  Filter [predicate=BinaryOp(op='=', left=ColumnRef(table=None, column='id'), right=Param(index=0))] (~1 rows, ~1 touched)
    IndexLookup [table='it_user', candidates=['<pk>']] (~1 rows, ~1 touched)
""")


def test_snapshot_ndv_picks_cheaper_join_order():
    """Snapshot distinct counts flip the join base to the genuinely
    cheaper side.  ``refs.ref`` is all-distinct but carries no index, so
    the density heuristic prices its equality filter at rows//10 (~10
    survivors) — no better than the flag filter — and bases the chain on
    ``flags`` (130 rows actually touched).  The snapshot knows ``ref``
    has 100 distinct values (~1 survivor) and re-bases onto ``refs``
    with a PK probe into ``flags``: 101 rows actually touched."""
    from repro.sqldb.plan import cost

    def build():
        db = Database(result_cache_size=0)
        db.execute(
            "CREATE TABLE flags (id INT PRIMARY KEY, flag TEXT, note TEXT)")
        db.execute(
            "CREATE TABLE refs (id INT PRIMARY KEY, flag_id INT, ref TEXT)")
        db.execute("CREATE INDEX idx_refs_flag_id ON refs (flag_id)")
        for i in range(80):
            db.execute("INSERT INTO flags VALUES (?, ?, ?)",
                       (i, "hot" if i % 2 else "cold", f"n{i}"))
        for i in range(100):
            db.execute("INSERT INTO refs VALUES (?, ?, ?)",
                       (i, i % 80, f"R-{i:04d}"))
        return db

    sql = ("SELECT f.note, r.id FROM flags f "
           "JOIN refs r ON r.flag_id = f.id "
           "WHERE f.flag = 'hot' AND r.ref = 'R-0043'")
    db = build()
    assert_plan(db, sql, """
Project
  Filter [predicate=BinaryOp(op='=', left=ColumnRef(table='f', column='flag'), right=Literal(value='hot'))] (~1 rows, ~101 touched)
    Join [kind='INNER', table='flags', strategy='index', index_name='<pk>'] (~1 rows, ~101 touched)
      Filter [predicate=BinaryOp(op='=', left=ColumnRef(table='r', column='ref'), right=Literal(value='R-0043'))] (~1 rows, ~100 touched)
        Scan [table='refs', alias='r'] (~100 rows, ~100 touched)
""")
    with_stats = db.execute(sql)
    assert with_stats.rows == [("n43", 43)]
    assert with_stats.rows_touched == 101
    # The same schema planned without snapshot statistics bases the
    # chain on flags and touches measurably more storage.
    heuristic_db = build()
    orig = cost._snapshot_stats
    cost._snapshot_stats = lambda db, table_name: None
    try:
        plan = heuristic_db.explain(sql)
        without_stats = heuristic_db.execute(sql)
    finally:
        cost._snapshot_stats = orig
    assert "Scan [table='flags', alias='f']" in plan
    assert without_stats.rows == with_stats.rows
    assert without_stats.rows_touched == 130
    assert with_stats.rows_touched < without_stats.rows_touched


# ---------------------------------------------------------------------------
# OpenMRS
# ---------------------------------------------------------------------------

def test_openmrs_encounter_obs_display(openmrs_db):
    assert_plan(openmrs_db, (
        "SELECT o.id, o.value_text, c.name FROM obs o "
        "JOIN concept c ON o.concept_id = c.id WHERE o.encounter_id = ?"), """
Project
  Join [kind='INNER', table='concept', strategy='index', index_name='<pk>'] (~11 rows, ~21 touched)
    Filter [predicate=BinaryOp(op='=', left=ColumnRef(table='o', column='encounter_id'), right=Param(index=0))] (~11 rows, ~11 touched)
      IndexLookup [table='obs', candidates=['idx_obs_encounter_id']] (~11 rows, ~11 touched)
""")


def test_openmrs_encounter_concept_numeric_report(openmrs_db):
    assert_plan(openmrs_db, (
        "SELECT e.id, o.id, c.name FROM encounter e "
        "JOIN obs o ON o.encounter_id = e.id "
        "JOIN concept c ON o.concept_id = c.id "
        "WHERE e.patient_id = ? AND o.value_numeric >= ?"), """
Project
  Join [kind='INNER', table='concept', strategy='index', index_name='<pk>'] (~26 rows, ~118 touched)
    Filter [predicate=BinaryOp(op='>=', left=ColumnRef(table='o', column='value_numeric'), right=Param(index=1))] (~26 rows, ~93 touched)
      Join [kind='INNER', table='obs', strategy='index', index_name='idx_obs_encounter_id'] (~26 rows, ~93 touched)
        Filter [predicate=BinaryOp(op='=', left=ColumnRef(table='e', column='patient_id'), right=Param(index=0))] (~8 rows, ~8 touched)
          IndexLookup [table='encounter', candidates=['idx_encounter_patient_id']] (~8 rows, ~8 touched)
""")


def test_openmrs_patient_demographics(openmrs_db):
    assert_plan(openmrs_db, (
        "SELECT pt.identifier, pe.name FROM patient pt "
        "JOIN person pe ON pt.person_id = pe.id WHERE pt.id = ?"), """
Project
  Join [kind='INNER', table='person', strategy='index', index_name='<pk>'] (~1 rows, ~2 touched)
    Filter [predicate=BinaryOp(op='=', left=ColumnRef(table='pt', column='id'), right=Param(index=0))] (~1 rows, ~1 touched)
      IndexLookup [table='patient', candidates=['<pk>']] (~1 rows, ~1 touched)
""")


def test_openmrs_concept_class_listing_probes_fk_index(openmrs_db):
    assert_plan(openmrs_db, (
        "SELECT c.id, c.name, k.name FROM concept c "
        "JOIN concept_class k ON c.class_id = k.id WHERE k.id = ?"), """
Project
  Join [kind='INNER', table='concept', strategy='index', index_name='idx_concept_class_id'] (~15 rows, ~16 touched)
    Filter [predicate=BinaryOp(op='=', left=ColumnRef(table='k', column='id'), right=Param(index=0))] (~1 rows, ~1 touched)
      IndexLookup [table='concept_class', candidates=['<pk>']] (~1 rows, ~1 touched)
""")


def test_openmrs_encounters_in_period_rebases_onto_range_scan(openmrs_db):
    """Range-aware join reordering: the BETWEEN over encounter_date makes
    encounter the cheapest chain base (via its ordered index), so the
    chain re-bases onto it and the ORDER BY rides the index order through
    both joins."""
    assert_plan(openmrs_db, (
        "SELECT e.id, e.encounter_date, pe.name FROM encounter e "
        "JOIN patient pt ON e.patient_id = pt.id "
        "JOIN person pe ON pt.person_id = pe.id "
        "WHERE e.encounter_date BETWEEN ? AND ? "
        "ORDER BY e.encounter_date"), """
Project
  Join [kind='INNER', table='person', strategy='hash'] (~100 rows, ~222 touched)
    Join [kind='INNER', table='patient', strategy='hash'] (~100 rows, ~150 touched)
      Filter [predicate=Between(expr=ColumnRef(table='e', column='encounter_date'), low=Param(index=0), high=Param(index=1), negated=False)] (~100 rows, ~100 touched)
        IndexRangeScan [table='encounter', index='idx_encounter_date', bounds='? <= encounter_date <= ?', order='encounter_date ASC (sort elided)'] (~100 rows, ~100 touched)
""")


# ---------------------------------------------------------------------------
# TPC-C
# ---------------------------------------------------------------------------

def test_tpcc_stock_level_range_scans_order_lines(tpcc_db):
    """The ``ol_o_id < ?`` conjunct turns the order-line access into an
    ordered-index range scan (rendered bounds included); no single-column
    index serves s_i_id, so the stock side stays a hash build and the
    stock-only WHERE conjuncts split into the residual filter above the
    equi join."""
    assert_plan(tpcc_db, (
        "SELECT COUNT(DISTINCT s_i_id) AS low_stock FROM order_line "
        "JOIN stock ON s_i_id = ol_i_id "
        "WHERE ol_d_id = ? AND ol_o_id < ? AND s_w_id = ? "
        "AND s_quantity < ?"), """
Aggregate
  Filter [predicate=BinaryOp(op='AND', left=BinaryOp(op='=', left=ColumnRef(table=None, column='s_w_id'), right=Param(index=2)), right=BinaryOp(op='<', left=ColumnRef(table=None, column='s_quantity'), right=Param(index=3)))] (~3 rows, ~580 touched)
    Join [kind='INNER', table='stock', strategy='hash'] (~3 rows, ~580 touched)
      Filter [predicate=BinaryOp(op='AND', left=BinaryOp(op='=', left=ColumnRef(table=None, column='ol_d_id'), right=Param(index=0)), right=BinaryOp(op='<', left=ColumnRef(table=None, column='ol_o_id'), right=Param(index=1)))] (~9 rows, ~180 touched)
        IndexRangeScan [table='order_line', index='idx_order_line_o', bounds='ol_o_id < ?'] (~9 rows, ~180 touched)
""")


def test_tpcc_orders_customer_pk_probe_elides_sort(tpcc_db):
    """ORDER BY o_id rides the ordered index on orders: the walk delivers
    o_id order, the per-row customer PK probe preserves its left input's
    order, and the Sort node disappears from the plan."""
    assert_plan(tpcc_db, (
        "SELECT o_id, c_last FROM orders "
        "JOIN customer ON c_id = o_c_id WHERE o_d_id = ? ORDER BY o_id"), """
Project
  Join [kind='INNER', table='customer', strategy='index', index_name='<pk>'] (~10 rows, ~210 touched)
    Filter [predicate=BinaryOp(op='=', left=ColumnRef(table=None, column='o_d_id'), right=Param(index=0))] (~10 rows, ~200 touched)
      IndexRangeScan [table='orders', index='idx_orders_id', order='o_id ASC (sort elided)'] (~10 rows, ~200 touched)
""")


def test_tpcc_customer_by_last_name(tpcc_db):
    assert_plan(tpcc_db, (
        "SELECT c_id, c_balance FROM customer "
        "WHERE c_last = ? AND c_d_id = ? ORDER BY c_id"), """
Sort [order_by=[OrderItem(expr=ColumnRef(table=None, column='c_id'), descending=False)]]
  Project
    Filter [predicate=BinaryOp(op='AND', left=BinaryOp(op='=', left=ColumnRef(table=None, column='c_last'), right=Param(index=0)), right=BinaryOp(op='=', left=ColumnRef(table=None, column='c_d_id'), right=Param(index=1)))] (~1 rows, ~1 touched)
      IndexLookup [table='customer', candidates=['idx_customer_last']] (~1 rows, ~1 touched)
""")
