"""Golden EXPLAIN plans for representative itracker / OpenMRS / TPC-C
statements.

These lock the optimizer's chosen join order (tree nesting), join strategy
(hash / index / nested), access path and cost annotations over the
deterministic seeded app databases, so any optimizer or cost-model change
surfaces as a readable plan diff rather than a silent perf regression.

The databases are built fresh at module scope (not the shared session
fixtures) so plan estimates cannot drift with test execution order.
"""

import pytest

from repro.sqldb import Database


@pytest.fixture(scope="module")
def itracker_db():
    from repro.apps import itracker

    db, _ = itracker.build_app()
    return db


@pytest.fixture(scope="module")
def openmrs_db():
    from repro.apps import openmrs

    db, _ = openmrs.build_app()
    return db


@pytest.fixture(scope="module")
def tpcc_db():
    from repro.apps.tpcc import data

    db = Database("tpcc")
    data.seed(db)
    return db


def assert_plan(db, sql, expected):
    assert db.explain(sql) == expected.strip("\n")


# ---------------------------------------------------------------------------
# itracker
# ---------------------------------------------------------------------------

def test_itracker_project_issue_listing(itracker_db):
    assert_plan(itracker_db, (
        "SELECT i.id, i.description, u.login FROM it_issue i "
        "JOIN it_user u ON i.creator_id = u.id WHERE i.project_id = ?"), """
Project
  Join [kind='INNER', table='it_user', strategy='hash'] (~50 rows, ~70 touched)
    Filter [predicate=BinaryOp(op='=', left=ColumnRef(table='i', column='project_id'), right=Param(index=0))] (~50 rows, ~50 touched)
      IndexLookup [table='it_issue', candidates=['idx_it_issue_project_id']] (~50 rows, ~50 touched)
""")


def test_itracker_severe_issue_report_reorders_to_project(itracker_db):
    """Three-way join: the optimizer re-bases the chain on the pinned
    project (PK lookup), probes issues through the project-id index, then
    resolves creators per row through the user PK."""
    assert_plan(itracker_db, (
        "SELECT p.name, i.id, u.login FROM it_project p "
        "JOIN it_issue i ON i.project_id = p.id "
        "JOIN it_user u ON i.creator_id = u.id "
        "WHERE p.id = ? AND i.severity = ?"), """
Project
  Join [kind='INNER', table='it_user', strategy='index', index_name='<pk>'] (~1 rows, ~52 touched)
    Filter [predicate=BinaryOp(op='=', left=ColumnRef(table='i', column='severity'), right=Param(index=1))] (~1 rows, ~51 touched)
      Join [kind='INNER', table='it_issue', strategy='index', index_name='idx_it_issue_project_id'] (~1 rows, ~51 touched)
        Filter [predicate=BinaryOp(op='=', left=ColumnRef(table='p', column='id'), right=Param(index=0))] (~1 rows, ~1 touched)
          IndexLookup [table='it_project', candidates=['<pk>']] (~1 rows, ~1 touched)
""")


def test_itracker_user_history_audit(itracker_db):
    assert_plan(itracker_db, (
        "SELECT h.id, h.action, u.login FROM it_history h "
        "JOIN it_user u ON h.user_id = u.id WHERE h.user_id = ?"), """
Project
  Join [kind='INNER', table='it_user', strategy='hash'] (~50 rows, ~70 touched)
    Filter [predicate=BinaryOp(op='=', left=ColumnRef(table='h', column='user_id'), right=Param(index=0))] (~50 rows, ~50 touched)
      IndexLookup [table='it_history', candidates=['idx_it_history_user_id']] (~50 rows, ~50 touched)
""")


def test_itracker_user_by_pk(itracker_db):
    assert_plan(itracker_db, "SELECT login FROM it_user WHERE id = ?", """
Project
  Filter [predicate=BinaryOp(op='=', left=ColumnRef(table=None, column='id'), right=Param(index=0))] (~1 rows, ~1 touched)
    IndexLookup [table='it_user', candidates=['<pk>']] (~1 rows, ~1 touched)
""")


# ---------------------------------------------------------------------------
# OpenMRS
# ---------------------------------------------------------------------------

def test_openmrs_encounter_obs_display(openmrs_db):
    assert_plan(openmrs_db, (
        "SELECT o.id, o.value_text, c.name FROM obs o "
        "JOIN concept c ON o.concept_id = c.id WHERE o.encounter_id = ?"), """
Project
  Join [kind='INNER', table='concept', strategy='index', index_name='<pk>'] (~11 rows, ~21 touched)
    Filter [predicate=BinaryOp(op='=', left=ColumnRef(table='o', column='encounter_id'), right=Param(index=0))] (~11 rows, ~11 touched)
      IndexLookup [table='obs', candidates=['idx_obs_encounter_id']] (~11 rows, ~11 touched)
""")


def test_openmrs_encounter_concept_numeric_report(openmrs_db):
    assert_plan(openmrs_db, (
        "SELECT e.id, o.id, c.name FROM encounter e "
        "JOIN obs o ON o.encounter_id = e.id "
        "JOIN concept c ON o.concept_id = c.id "
        "WHERE e.patient_id = ? AND o.value_numeric >= ?"), """
Project
  Join [kind='INNER', table='concept', strategy='index', index_name='<pk>'] (~26 rows, ~118 touched)
    Filter [predicate=BinaryOp(op='>=', left=ColumnRef(table='o', column='value_numeric'), right=Param(index=1))] (~26 rows, ~93 touched)
      Join [kind='INNER', table='obs', strategy='index', index_name='idx_obs_encounter_id'] (~26 rows, ~93 touched)
        Filter [predicate=BinaryOp(op='=', left=ColumnRef(table='e', column='patient_id'), right=Param(index=0))] (~8 rows, ~8 touched)
          IndexLookup [table='encounter', candidates=['idx_encounter_patient_id']] (~8 rows, ~8 touched)
""")


def test_openmrs_patient_demographics(openmrs_db):
    assert_plan(openmrs_db, (
        "SELECT pt.identifier, pe.name FROM patient pt "
        "JOIN person pe ON pt.person_id = pe.id WHERE pt.id = ?"), """
Project
  Join [kind='INNER', table='person', strategy='index', index_name='<pk>'] (~1 rows, ~2 touched)
    Filter [predicate=BinaryOp(op='=', left=ColumnRef(table='pt', column='id'), right=Param(index=0))] (~1 rows, ~1 touched)
      IndexLookup [table='patient', candidates=['<pk>']] (~1 rows, ~1 touched)
""")


def test_openmrs_concept_class_listing_probes_fk_index(openmrs_db):
    assert_plan(openmrs_db, (
        "SELECT c.id, c.name, k.name FROM concept c "
        "JOIN concept_class k ON c.class_id = k.id WHERE k.id = ?"), """
Project
  Join [kind='INNER', table='concept', strategy='index', index_name='idx_concept_class_id'] (~15 rows, ~16 touched)
    Filter [predicate=BinaryOp(op='=', left=ColumnRef(table='k', column='id'), right=Param(index=0))] (~1 rows, ~1 touched)
      IndexLookup [table='concept_class', candidates=['<pk>']] (~1 rows, ~1 touched)
""")


# ---------------------------------------------------------------------------
# TPC-C
# ---------------------------------------------------------------------------

def test_tpcc_stock_level_keeps_hash_join(tpcc_db):
    """No single-column index serves s_i_id, so the stock side stays a hash
    build; the stock-only WHERE conjuncts split into the residual filter
    above the equi join."""
    assert_plan(tpcc_db, (
        "SELECT COUNT(DISTINCT s_i_id) AS low_stock FROM order_line "
        "JOIN stock ON s_i_id = ol_i_id "
        "WHERE ol_d_id = ? AND ol_o_id < ? AND s_w_id = ? "
        "AND s_quantity < ?"), """
Aggregate
  Filter [predicate=BinaryOp(op='AND', left=BinaryOp(op='=', left=ColumnRef(table=None, column='s_w_id'), right=Param(index=2)), right=BinaryOp(op='<', left=ColumnRef(table=None, column='s_quantity'), right=Param(index=3)))] (~1 rows, ~1000 touched)
    Join [kind='INNER', table='stock', strategy='hash'] (~1 rows, ~1000 touched)
      Filter [predicate=BinaryOp(op='AND', left=BinaryOp(op='=', left=ColumnRef(table=None, column='ol_d_id'), right=Param(index=0)), right=BinaryOp(op='<', left=ColumnRef(table=None, column='ol_o_id'), right=Param(index=1)))] (~3 rows, ~600 touched)
        Scan [table='order_line', alias='order_line'] (~600 rows, ~600 touched)
""")


def test_tpcc_orders_customer_pk_probe(tpcc_db):
    assert_plan(tpcc_db, (
        "SELECT o_id, c_last FROM orders "
        "JOIN customer ON c_id = o_c_id WHERE o_d_id = ? ORDER BY o_id"), """
Sort [order_by=[OrderItem(expr=ColumnRef(table=None, column='o_id'), descending=False)]]
  Project
    Join [kind='INNER', table='customer', strategy='index', index_name='<pk>'] (~10 rows, ~210 touched)
      Filter [predicate=BinaryOp(op='=', left=ColumnRef(table=None, column='o_d_id'), right=Param(index=0))] (~10 rows, ~200 touched)
        Scan [table='orders', alias='orders'] (~200 rows, ~200 touched)
""")


def test_tpcc_customer_by_last_name(tpcc_db):
    assert_plan(tpcc_db, (
        "SELECT c_id, c_balance FROM customer "
        "WHERE c_last = ? AND c_d_id = ? ORDER BY c_id"), """
Sort [order_by=[OrderItem(expr=ColumnRef(table=None, column='c_id'), descending=False)]]
  Project
    Filter [predicate=BinaryOp(op='AND', left=BinaryOp(op='=', left=ColumnRef(table=None, column='c_last'), right=Param(index=0)), right=BinaryOp(op='=', left=ColumnRef(table=None, column='c_d_id'), right=Param(index=1)))] (~1 rows, ~1 touched)
      IndexLookup [table='customer', candidates=['idx_customer_last']] (~1 rows, ~1 touched)
""")
