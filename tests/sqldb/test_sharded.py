"""Unit tests for the sharding subsystem: routing classification, write
fan-out, insert splitting, the scatter merge, and the facade's cost
surface (``shard_phases``)."""

import pytest

from repro.sqldb.errors import SqlError
from repro.sqldb.parser import parse
from repro.sqldb.shard import (COORD_STATION, KIND_BROADCAST_READ,
                               KIND_GATHER, KIND_SCATTER, KIND_SINGLE,
                               PartitionSpec, Router, ShardTopology,
                               ShardedDatabase)

TOPO = ShardTopology(4, {"t": PartitionSpec("grp"),
                         "child": PartitionSpec("grp"),
                         "other": PartitionSpec("grp", "range", (1, 2, 3))})


def decide(sql, params=()):
    return Router(TOPO).decide(parse(sql), params, sql=sql)


# ---------------------------------------------------------------------------
# Routing classification
# ---------------------------------------------------------------------------

def test_partition_key_equality_is_single_shard():
    d = decide("SELECT id FROM t WHERE grp = ?", (6,))
    assert d.kind == KIND_SINGLE
    assert list(d.shards) == [6 % 4]


def test_in_list_spanning_one_shard_is_single():
    d = decide("SELECT id FROM t WHERE grp IN (1, 5)")  # both hash to 1
    assert d.kind == KIND_SINGLE
    assert list(d.shards) == [1]


def test_in_list_spanning_two_shards_scatters_to_subset():
    d = decide("SELECT id FROM t WHERE grp IN (1, 2)")
    assert d.kind == KIND_SCATTER
    assert sorted(d.shards) == [1, 2]


def test_unrestricted_read_scatters_everywhere():
    d = decide("SELECT id FROM t ORDER BY id")
    assert d.kind == KIND_SCATTER
    assert list(d.shards) == [0, 1, 2, 3]


def test_aggregate_without_key_gathers():
    d = decide("SELECT COUNT(*) FROM t")
    assert d.kind == KIND_GATHER


def test_aggregate_with_key_stays_single_shard():
    d = decide("SELECT COUNT(*) FROM t WHERE grp = 2")
    assert d.kind == KIND_SINGLE
    assert list(d.shards) == [2]


def test_broadcast_table_read_pins_to_one_shard():
    d = decide("SELECT id FROM lk WHERE id = 3")
    assert d.kind == KIND_BROADCAST_READ
    assert len(list(d.shards)) == 1


def test_broadcast_pin_varies_with_params_but_is_deterministic():
    router = Router(TOPO)
    stmt = parse("SELECT id FROM lk WHERE id = ?")
    sql = "SELECT id FROM lk WHERE id = ?"
    pins = {router.broadcast_read_shard(sql, stmt, (k,)) for k in range(32)}
    assert len(pins) > 1  # spreads across the fleet
    assert (router.broadcast_read_shard(sql, stmt, (3,))
            == router.broadcast_read_shard(sql, stmt, (3,)))


def test_contradictory_keys_route_to_one_empty_shard():
    d = decide("SELECT id FROM t WHERE grp = 1 AND grp = 2")
    assert d.kind == KIND_SINGLE
    assert "empty shard set" in d.detail


def test_non_co_partitioned_join_gathers():
    # t is hash-partitioned, other is range-partitioned: an INNER join on
    # the partition columns cannot be served shard-locally.
    d = decide("SELECT t.id FROM t JOIN other o ON t.grp = o.grp")
    assert d.kind == KIND_GATHER


def test_co_partitioned_join_scatters():
    d = decide("SELECT t.id FROM t JOIN child c ON t.grp = c.grp")
    assert d.kind == KIND_SCATTER


def test_left_join_of_two_partitioned_tables_gathers():
    d = decide("SELECT t.id FROM t LEFT JOIN child c ON t.grp = c.grp")
    assert d.kind == KIND_GATHER


def test_computed_limit_gathers():
    d = decide("SELECT id FROM t ORDER BY id LIMIT 1 + 2")
    assert d.kind == KIND_GATHER


# ---------------------------------------------------------------------------
# The facade: writes, phases, errors
# ---------------------------------------------------------------------------

def make_db(**kwargs):
    db = ShardedDatabase(ShardTopology(4, {"t": PartitionSpec("grp")}),
                         **kwargs)
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, grp INT, val INT)")
    db.execute("CREATE TABLE lk (id INTEGER PRIMARY KEY, label TEXT)")
    return db


def test_multi_row_insert_splits_by_partition_key():
    db = make_db()
    db.execute("INSERT INTO t (id, grp, val) VALUES "
               "(1, 0, 10), (2, 1, 20), (3, 4, 30)")
    assert db.primary(0).query("SELECT id FROM t") == [{"id": 1},
                                                       {"id": 3}]
    assert db.primary(1).query("SELECT id FROM t") == [{"id": 2}]
    assert db.table_size("t") == 3


def test_partition_key_update_moving_shards_is_rejected():
    db = make_db()
    db.execute("INSERT INTO t (id, grp, val) VALUES (1, 0, 10)")
    with pytest.raises(SqlError):
        db.execute("UPDATE t SET grp = 1 WHERE id = 1")
    # Same-shard rewrites of the key are fine (0 and 4 both hash to 0)
    # when the WHERE pins the statement to that one shard.
    db.execute("UPDATE t SET grp = 4 WHERE grp = 0")
    assert db.execute("SELECT grp FROM t WHERE grp = 4").rows == [(4,)]


def test_single_shard_read_has_one_phase_one_station():
    db = make_db()
    db.execute("INSERT INTO t (id, grp, val) VALUES (1, 2, 10)")
    result = db.execute("SELECT id FROM t WHERE grp = 2")
    assert result.shard_phases == (((2, result.rows_touched, False),),)


def test_scatter_read_has_one_phase_with_every_target():
    db = make_db()
    for i in range(8):
        db.execute("INSERT INTO t (id, grp, val) VALUES (?, ?, 0)",
                   (i, i % 4))
    result = db.execute("SELECT id FROM t ORDER BY id")
    (phase,) = result.shard_phases
    assert sorted(station for station, _r, _c in phase) == [0, 1, 2, 3]
    assert sum(rows for _s, rows, _c in phase) == result.rows_touched


def test_gather_read_charges_sync_then_coordinator():
    db = make_db()
    for i in range(8):
        db.execute("INSERT INTO t (id, grp, val) VALUES (?, ?, 1)",
                   (i, i % 4))
    result = db.execute("SELECT SUM(val) FROM t")
    assert result.rows == [(8,)]
    sync_phase, coord_phase = result.shard_phases
    assert sorted(s for s, _r, _c in sync_phase) == [0, 1, 2, 3]
    assert [s for s, _r, _c in coord_phase] == [COORD_STATION]


def test_gather_reuses_coordinator_copy_until_a_write():
    db = make_db()
    db.execute("INSERT INTO t (id, grp, val) VALUES (1, 2, 10)")
    first = db.execute("SELECT SUM(val) FROM t")
    assert len(first.shard_phases) == 2  # sync + coordinator
    second = db.execute("SELECT COUNT(*) FROM t")
    assert len(second.shard_phases) == 1  # warm coordinator copy
    db.execute("INSERT INTO t (id, grp, val) VALUES (2, 3, 5)")
    third = db.execute("SELECT SUM(val) FROM t")
    assert len(third.shard_phases) == 2  # resynced
    assert third.rows == [(15,)]


def test_rollback_discards_all_shards():
    db = make_db()
    db.execute("BEGIN")
    db.execute("INSERT INTO t (id, grp, val) VALUES (1, 0, 1)")
    db.execute("INSERT INTO t (id, grp, val) VALUES (2, 1, 2)")
    db.execute("ROLLBACK")
    assert db.table_size("t") == 0


def test_facade_opts_out_of_batch_planning():
    assert ShardedDatabase.supports_batch_plan is False


def test_result_cache_toggle_fans_out():
    db = make_db()
    db.result_cache.enabled = False
    assert all(not backend.result_cache.enabled
               for backend in db.all_databases())
    db.result_cache.enabled = True
    # The coordinator runs cacheless by construction (size 0); every
    # primary and replica re-enables.
    assert all(backend.result_cache.enabled
               for backend in db.all_databases()
               if backend.result_cache.limit > 0)


def test_engine_setter_fans_out():
    db = make_db()
    db.engine = "row"
    assert all(backend.engine == "row" for backend in db.all_databases())


def test_explain_analyze_is_rejected():
    db = make_db()
    with pytest.raises(SqlError):
        db.explain("SELECT id FROM t", analyze=True)
