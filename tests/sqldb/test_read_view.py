"""Per-request snapshot read views (the miniature MVCC layer).

Covers the copy-on-write freeze (lazy, once per pinned version), snapshot
reads through every access path (seq scan, pk lookup, hash and ordered
secondary indexes, shared batch scans), read-your-writes, the result-cache
bypass in both directions, transaction interplay, and frozen-state GC.
"""

import pytest

from repro.net.clock import CostModel, SimClock
from repro.net.driver import BatchDriver
from repro.net.server import DatabaseServer
from repro.sqldb import Database


@pytest.fixture
def db():
    database = Database()
    database.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, grp INT, v INT)")
    database.execute("CREATE INDEX idx_grp ON t (grp)")
    database.execute(
        "CREATE INDEX idx_v ON t (v) USING ORDERED")
    for i in range(10):
        database.execute(
            "INSERT INTO t (id, grp, v) VALUES (?, ?, ?)",
            (i, i % 3, i * 10))
    return database


class TestSnapshotReads:
    def test_view_pins_pre_write_rows(self, db):
        view = db.read_views.open()
        db.execute("UPDATE t SET v = 999 WHERE id = 1")
        with db.read_views.using(view):
            old = db.execute("SELECT v FROM t WHERE grp = 1 ORDER BY id")
        assert old.rows[0] == (10,)  # the pre-write value
        live = db.execute("SELECT v FROM t WHERE grp = 1 ORDER BY id")
        assert live.rows[0] == (999,)
        view.close()

    def test_pk_lookup_under_view(self, db):
        view = db.read_views.open()
        db.execute("DELETE FROM t WHERE id = 5")
        with db.read_views.using(view):
            snap = db.execute("SELECT v FROM t WHERE id = 5")
        assert snap.rows == [(50,)]  # still visible in the snapshot
        assert db.execute("SELECT v FROM t WHERE id = 5").rows == []
        view.close()

    def test_secondary_and_ordered_indexes_under_view(self, db):
        view = db.read_views.open()
        db.execute("INSERT INTO t (id, grp, v) VALUES (100, 1, 45)")
        with db.read_views.using(view):
            by_grp = db.execute("SELECT id FROM t WHERE grp = 1")
            in_range = db.execute(
                "SELECT id FROM t WHERE v BETWEEN 40 AND 50 ORDER BY v")
        assert (100,) not in by_grp.rows
        assert [r[0] for r in in_range.rows] == [4, 5]  # no id=100/v=45
        live = db.execute(
            "SELECT id FROM t WHERE v BETWEEN 40 AND 50 ORDER BY v")
        assert [r[0] for r in live.rows] == [4, 100, 5]
        view.close()

    def test_snapshot_identical_to_serial_pre_write_state(self, db):
        before = db.execute("SELECT * FROM t ORDER BY id").rows
        view = db.read_views.open()
        db.execute("UPDATE t SET v = v + 1 WHERE grp = 0")
        db.execute("DELETE FROM t WHERE id = 9")
        db.execute("INSERT INTO t (id, grp, v) VALUES (50, 2, 7)")
        with db.read_views.using(view):
            snap = db.execute("SELECT * FROM t ORDER BY id").rows
        assert snap == before
        view.close()


class TestCopyOnWrite:
    def test_no_freeze_without_views(self, db):
        db.execute("UPDATE t SET v = 1 WHERE id = 0")
        assert db.read_views.freezes == 0

    def test_freeze_is_lazy_and_once_per_version(self, db):
        view = db.read_views.open()
        assert db.read_views.freezes == 0  # opening copies nothing
        db.execute("UPDATE t SET v = 1 WHERE id = 0")
        db.execute("UPDATE t SET v = 2 WHERE id = 0")
        # Only the first write past the pinned version froze; the second
        # moved between unpinned versions.
        assert db.read_views.freezes == 1
        view.close()

    def test_close_gcs_frozen_states(self, db):
        view = db.read_views.open()
        db.execute("UPDATE t SET v = 1 WHERE id = 0")
        assert db.read_views.frozen_state_count == 1
        view.close()
        assert db.read_views.frozen_state_count == 0
        assert db.read_views.open_view_count == 0

    def test_two_views_share_one_frozen_state(self, db):
        v1 = db.read_views.open()
        v2 = db.read_views.open()
        db.execute("UPDATE t SET v = 1 WHERE id = 0")
        assert db.read_views.freezes == 1
        v1.close()
        assert db.read_views.frozen_state_count == 1  # v2 still pins it
        v2.close()
        assert db.read_views.frozen_state_count == 0


class TestReadYourWrites:
    def test_own_write_is_visible(self, db):
        view = db.read_views.open()
        with db.read_views.using(view):
            db.execute("UPDATE t SET v = 123 WHERE id = 2")
            mine = db.execute("SELECT v FROM t WHERE id = 2")
        assert mine.rows == [(123,)]
        view.close()

    def test_own_write_does_not_freeze_for_the_writer(self, db):
        view = db.read_views.open()
        with db.read_views.using(view):
            db.execute("UPDATE t SET v = 123 WHERE id = 2")
        # The only open view is the writer's: nothing needed freezing.
        assert db.read_views.freezes == 0
        view.close()


class TestTransactions:
    def test_open_refused_mid_transaction(self, db):
        db.execute("BEGIN")
        with pytest.raises(RuntimeError):
            db.read_views.open()
        db.execute("ROLLBACK")

    def test_other_requests_pending_writes_invisible(self, db):
        view = db.read_views.open()
        db.execute("BEGIN")
        db.execute("UPDATE t SET v = 777 WHERE id = 3")
        with db.read_views.using(view):
            snap = db.execute("SELECT v FROM t WHERE id = 3")
        assert snap.rows == [(30,)]  # uncommitted write not visible
        db.execute("COMMIT")
        with db.read_views.using(view):
            still = db.execute("SELECT v FROM t WHERE id = 3")
        assert still.rows == [(30,)]  # committed but after the view opened
        view.close()

    def test_rollback_returns_view_to_live_reads(self, db):
        view = db.read_views.open()
        db.execute("BEGIN")
        db.execute("UPDATE t SET v = 777 WHERE id = 3")
        db.execute("ROLLBACK")
        with db.read_views.using(view):
            result = db.execute("SELECT v FROM t WHERE id = 3")
        assert result.rows == [(30,)]
        view.close()


class TestCacheIsolation:
    def test_stale_view_never_served_from_cache(self, db):
        view = db.read_views.open()
        db.execute("UPDATE t SET v = 999 WHERE id = 1")
        # Warm the cache against the *current* version.
        db.execute("SELECT v FROM t WHERE id = 1")
        hit = db.execute("SELECT v FROM t WHERE id = 1")
        assert hit.rows_touched == 0 and hit.rows == [(999,)]
        with db.read_views.using(view):
            snap = db.execute("SELECT v FROM t WHERE id = 1")
        assert snap.rows == [(10,)]  # the snapshot, not the cached rows
        view.close()

    def test_view_execution_does_not_poison_cache(self, db):
        view = db.read_views.open()
        db.execute("UPDATE t SET v = 999 WHERE id = 1")
        with db.read_views.using(view):
            db.execute("SELECT v FROM t WHERE id = 1")  # snapshot read
        # The snapshot rows were not stored: a live read re-executes and
        # sees the committed value.
        live = db.execute("SELECT v FROM t WHERE id = 1")
        assert live.rows == [(999,)]
        view.close()

    def test_fresh_view_still_uses_cache(self, db):
        view = db.read_views.open()
        with db.read_views.using(view):
            db.execute("SELECT v FROM t WHERE id = 1")
            hit = db.execute("SELECT v FROM t WHERE id = 1")
        # Nothing moved: the view matches live versions, caching applies.
        assert hit.rows_touched == 0
        view.close()


class TestSharedScanUnderViews:
    def _stack(self, db):
        clock = SimClock()
        server = DatabaseServer(db, CostModel())
        return BatchDriver(server, clock)

    def test_batch_shared_scan_sees_snapshot(self, db):
        # A table with no secondary indexes: predicates on a/b always plan
        # as sequential scans, making the statements shareable.
        db.execute("CREATE TABLE s (id INT PRIMARY KEY, a INT, b INT)")
        for i in range(8):
            db.execute("INSERT INTO s (id, a, b) VALUES (?, ?, ?)",
                       (i, i % 2, i))
        driver = self._stack(db)
        view = db.read_views.open()
        db.execute("INSERT INTO s (id, a, b) VALUES (200, 0, 3)")
        driver.read_view = view
        results = driver.execute_batch(
            [("SELECT id FROM s WHERE a = 0", ()),
             ("SELECT id FROM s WHERE b > 2", ())],
            batch_optimize=True)
        for result in results:
            assert all(row[0] != 200 for row in result.rows)
        assert driver.stats.shared_scan_groups == 1
        view.close()
