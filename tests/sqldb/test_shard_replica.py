"""Replica-staleness oracle.

Hypothesis generates interleavings of autocommit writes and single-shard
reads against a replicated :class:`ShardedDatabase` and pins down the
replication contract:

- **Bounded staleness.**  Every replica-served read leaves the serving
  replica within ``staleness_bound`` log entries of its primary, and the
  rows it returned are exactly what a fresh database replaying the
  replica's applied log *prefix* produces — replicas serve a consistent
  prefix of history, never a smear.
- **Read-your-writes on primaries.**  With replica reads disabled (and
  inside transactions, where the facade always pins to primaries) every
  read reflects every prior write, byte-for-byte against a single-node
  shadow.
- **Result-cache coherence.**  A replica's result cache may serve a hit
  only for the state the replica has applied: with bound 0 a write is
  visible on the very next read of the same statement; with a loose
  bound the cached answer still matches the replica's replayed prefix.
- **Read views.**  Reads under an open view bypass replicas and are
  repeatable regardless of concurrent writes and replica lag.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqldb import Database
from repro.sqldb.shard import PartitionSpec, ShardTopology, ShardedDatabase

_DDL = ("CREATE TABLE t (id INTEGER PRIMARY KEY, grp INT, val INT);"
        "CREATE TABLE lk (id INTEGER PRIMARY KEY, label INT);")

_READ = "SELECT id, grp, val FROM t WHERE grp = ? ORDER BY id"


def make_sharded(staleness_bound, shards=2, replicas=1, **kwargs):
    topology = ShardTopology(shards, {"t": PartitionSpec("grp")},
                             replicas=replicas,
                             staleness_bound=staleness_bound)
    db = ShardedDatabase(topology, **kwargs)
    db.execute_script(_DDL)
    return db


def replay_prefix(sh, applied):
    """A fresh database holding exactly the replica's applied state."""
    shadow = Database("shadow")
    shadow.execute_script(_DDL)
    for entry in sh.log[:applied]:
        for stmt, params in entry:
            shadow.execute_parsed(stmt, params)
    return shadow


# ops: (kind, grp, val) — kind "w" inserts, "u" updates, "d" deletes,
# "r" reads grp via the replica path.
_OPS = st.lists(st.tuples(st.sampled_from(["w", "w", "u", "d", "r", "r"]),
                          st.integers(min_value=0, max_value=4),
                          st.integers(min_value=0, max_value=9)),
                min_size=1, max_size=24)


@given(ops=_OPS, bound=st.integers(min_value=0, max_value=3))
@settings(max_examples=120, deadline=None)
def test_bounded_staleness_prefix_consistency(ops, bound):
    """Replica reads stay within the staleness bound and return exactly
    the replayed applied-prefix state."""
    db = make_sharded(bound)
    spec = db.topology.spec_for("t")
    next_id = 0
    for kind, grp, val in ops:
        if kind == "w":
            db.execute("INSERT INTO t (id, grp, val) VALUES (?, ?, ?)",
                       (next_id, grp, val))
            next_id += 1
        elif kind == "u":
            db.execute("UPDATE t SET val = ? WHERE grp = ?", (val, grp))
        elif kind == "d":
            db.execute("DELETE FROM t WHERE grp = ? AND val = ?", (grp, val))
        else:
            result = db.execute(_READ, (grp,))
            shard = spec.shard_of(grp, db.topology.shards)
            sh = db.shards[shard]
            rep = sh.replicas[0]
            assert db.replica_lag(shard) <= bound
            shadow = replay_prefix(sh, rep.applied)
            assert result.rows == shadow.execute(_READ, (grp,)).rows


@given(ops=_OPS)
@settings(max_examples=80, deadline=None)
def test_read_your_writes_on_primary(ops):
    """With replica reads disabled every read sees every prior write."""
    db = make_sharded(staleness_bound=3, read_from_replicas=False)
    shadow = Database("shadow")
    shadow.execute_script(_DDL)
    next_id = 0
    for kind, grp, val in ops:
        if kind == "w":
            stmt = ("INSERT INTO t (id, grp, val) VALUES (?, ?, ?)",
                    (next_id, grp, val))
            next_id += 1
        elif kind == "u":
            stmt = ("UPDATE t SET val = ? WHERE grp = ?", (val, grp))
        elif kind == "d":
            stmt = ("DELETE FROM t WHERE grp = ? AND val = ?", (grp, val))
        else:
            assert (db.execute(_READ, (grp,)).rows
                    == shadow.execute(_READ, (grp,)).rows)
            continue
        db.execute(*stmt)
        shadow.execute(*stmt)


def test_transaction_reads_pin_to_primary():
    """Inside a transaction reads bypass replicas entirely, so writes in
    the transaction are immediately visible (read-your-writes) even with
    a loose staleness bound."""
    db = make_sharded(staleness_bound=3)
    db.execute("BEGIN")
    db.execute("INSERT INTO t (id, grp, val) VALUES (1, 2, 7)")
    assert db.execute(_READ, (2,)).rows == [(1, 2, 7)]
    db.execute("COMMIT")
    # Post-commit the facade may serve replicas again (the loose bound
    # allows the commit to lag there); the primary has it immediately.
    db.read_from_replicas = False
    assert db.execute(_READ, (2,)).rows == [(1, 2, 7)]


def test_zero_bound_write_visible_through_result_cache():
    """With bound 0 the replica catches up before serving, which bumps
    its write versions and invalidates its result cache: a repeated
    statement never serves a stale hit."""
    db = make_sharded(staleness_bound=0)
    db.execute("INSERT INTO t (id, grp, val) VALUES (1, 2, 7)")
    assert db.execute(_READ, (2,)).rows == [(1, 2, 7)]
    # Warm the replica's result cache, then write behind its back.
    assert db.execute(_READ, (2,)).rows == [(1, 2, 7)]
    db.execute("UPDATE t SET val = 8 WHERE grp = 2")
    assert db.execute(_READ, (2,)).rows == [(1, 2, 8)]


def test_loose_bound_cache_hit_matches_replica_prefix():
    """Under a loose bound a cached replica answer is allowed to lag —
    but only to the replica's own applied prefix, never arbitrarily."""
    db = make_sharded(staleness_bound=2)
    spec = db.topology.spec_for("t")
    shard = spec.shard_of(2, db.topology.shards)
    db.execute("INSERT INTO t (id, grp, val) VALUES (1, 2, 7)")
    db.execute(_READ, (2,)).rows  # catches the replica up within the bound
    db.execute("UPDATE t SET val = 8 WHERE grp = 2")
    db.execute("UPDATE t SET val = 9 WHERE grp = 2")
    result = db.execute(_READ, (2,))
    sh = db.shards[shard]
    assert db.replica_lag(shard) <= 2
    shadow = replay_prefix(sh, sh.replicas[0].applied)
    assert result.rows == shadow.execute(_READ, (2,)).rows
    # Forcing freshness (a primary read) sees the final state.
    db.read_from_replicas = False
    assert db.execute(_READ, (2,)).rows == [(1, 2, 9)]


def test_open_read_view_bypasses_replicas_and_repeats():
    """Reads under an open view are served by primaries and repeat
    byte-for-byte while writes land outside the view."""
    db = make_sharded(staleness_bound=3)
    db.execute("INSERT INTO t (id, grp, val) VALUES (1, 2, 7)")
    view = db.read_views.open()
    try:
        with db.read_views.using(view):
            first = db.execute(_READ, (2,)).rows
        db.execute("UPDATE t SET val = 8 WHERE grp = 2")
        db.execute("INSERT INTO t (id, grp, val) VALUES (2, 2, 5)")
        with db.read_views.using(view):
            assert db.execute(_READ, (2,)).rows == first == [(1, 2, 7)]
    finally:
        view.close()
    db.read_from_replicas = False  # the primaries saw both writes
    assert db.execute(_READ, (2,)).rows == [(1, 2, 8), (2, 2, 5)]


def test_replica_round_robin_spreads_reads():
    """Two replicas alternate serving consecutive reads of one shard."""
    db = make_sharded(staleness_bound=0, replicas=2)
    db.execute("INSERT INTO t (id, grp, val) VALUES (1, 2, 7)")
    stations = set()
    for _ in range(4):
        result = db.execute(_READ, (2,))
        ((station, _rows, _cached),) = result.shard_phases[0]
        stations.add(station)
    shard = db.topology.spec_for("t").shard_of(2, db.topology.shards)
    assert stations == {f"{shard}r0", f"{shard}r1"}
