"""Tests for the planner subsystem: logical plans, optimizer rules,
physical operators, the plan cache, and the batch shared-scan optimizer."""

import pytest

from repro.sqldb import Database
from repro.sqldb.parser import parse
from repro.sqldb.plan.batch import execute_batch_plan


class TestOptimizerRules:
    def test_pk_predicate_selects_index_lookup(self, people_db):
        plan = people_db.explain("SELECT name FROM person WHERE id = 3")
        assert "IndexLookup" in plan
        assert "<pk>" in plan

    def test_secondary_index_selected(self, people_db):
        plan = people_db.explain("SELECT id FROM pet WHERE owner_id = 1")
        assert "idx_pet_owner" in plan

    def test_no_index_keeps_scan(self, people_db):
        plan = people_db.explain(
            "SELECT name FROM person WHERE city = 'boston'")
        assert "IndexLookup" not in plan
        assert "Scan" in plan

    def test_predicate_pushdown_below_join(self, people_db):
        plan = people_db.explain(
            "SELECT p.name FROM person p JOIN pet q ON p.id = q.owner_id "
            "WHERE p.city = 'boston' AND q.species = 'cat'")
        lines = plan.splitlines()
        join_depth = next(i for i, l in enumerate(lines) if "Join" in l)
        # One filter stays above the join (pet predicate), one is pushed
        # below it (person predicate).
        filters = [i for i, l in enumerate(lines) if "Filter" in l]
        assert any(i < join_depth for i in filters)
        assert any(i > join_depth for i in filters)

    def test_equi_join_gets_hash_strategy(self, people_db):
        plan = people_db.explain(
            "SELECT p.name FROM person p JOIN pet q ON p.id = q.owner_id")
        assert "strategy='hash'" in plan

    def test_non_equi_join_gets_nested_strategy(self, people_db):
        plan = people_db.explain(
            "SELECT p.name FROM person p JOIN pet q ON p.id > q.owner_id")
        assert "strategy='nested'" in plan


class TestPushdownSemantics:
    """Pushdown must not change results, for inner and left joins."""

    def test_inner_join_results_unchanged(self, people_db):
        rows = people_db.query(
            "SELECT p.name, q.species FROM person p "
            "JOIN pet q ON p.id = q.owner_id "
            "WHERE p.city = 'boston' AND q.species = 'cat' ORDER BY q.id")
        assert rows == [{"name": "alice", "species": "cat"}]

    def test_left_join_base_predicate(self, people_db):
        # dave has no pets; the base predicate keeps him, the LEFT join
        # NULL-extends him.
        rows = people_db.query(
            "SELECT p.name, q.id FROM person p "
            "LEFT JOIN pet q ON p.id = q.owner_id WHERE p.city = 'sf'")
        assert rows == [{"name": "dave", "id": None}]

    def test_right_side_predicate_not_pushed_on_left_join(self, people_db):
        rows = people_db.query(
            "SELECT p.name FROM person p "
            "LEFT JOIN pet q ON p.id = q.owner_id WHERE q.id IS NULL")
        assert [r["name"] for r in rows] == ["dave"]


class TestPlanCache:
    def test_repeated_statement_reuses_plan(self, people_db):
        stmt = parse("SELECT name FROM person WHERE id = ?")
        plan1 = people_db.executor.plan_for(stmt)
        plan2 = people_db.executor.plan_for(stmt)
        assert plan1 is plan2

    def test_ddl_invalidates_plans(self, people_db):
        stmt = parse("SELECT * FROM person WHERE age = 34")
        plan1 = people_db.executor.plan_for(stmt)
        people_db.execute("CREATE INDEX idx_person_age ON person (age)")
        plan2 = people_db.executor.plan_for(stmt)
        assert plan1 is not plan2
        # The new plan uses the new index.
        result = people_db.execute("SELECT * FROM person WHERE age = 34")
        assert result.rows_touched == 1

    def test_param_values_do_not_poison_plan(self, people_db):
        # The same prepared statement must fall back to a scan when the
        # parameter is NULL (col = NULL never matches) and use the index
        # when it is not.
        sql = "SELECT id FROM pet WHERE owner_id = ?"
        indexed = people_db.execute(sql, (1,))
        assert indexed.rows_touched == 2
        null_param = people_db.execute(sql, (None,))
        assert null_param.rows == []
        assert null_param.rows_touched == 4  # degraded to a scan


class TestSharedScanBatch:
    @pytest.fixture
    def batch_db(self):
        db = Database()
        db.execute("CREATE TABLE item (id INT PRIMARY KEY, kind TEXT, "
                   "price INT)")
        for i in range(50):
            db.execute("INSERT INTO item (id, kind, price) VALUES (?, ?, ?)",
                       (i, "ab"[i % 2], i * 3))
        return db

    def test_shared_scan_touches_fewer_rows(self, batch_db):
        statements = [
            ("SELECT id FROM item WHERE kind = ?", ("a",)),
            ("SELECT id FROM item WHERE kind = ?", ("b",)),
            ("SELECT id, price FROM item WHERE price > ?", (60,)),
        ]
        independent = [batch_db.execute(s, p) for s, p in statements]
        independent_touched = sum(r.rows_touched for r in independent)
        plan_result = execute_batch_plan(batch_db, statements)
        shared_touched = sum(
            r.rows_touched for r in plan_result.results)
        assert independent_touched == 150  # three full scans
        assert shared_touched == 50        # one shared scan
        assert len(plan_result.groups) == 1
        assert plan_result.groups[0].rows_saved == 100

    def test_results_byte_identical_to_independent_execution(self, batch_db):
        statements = [
            ("SELECT id FROM item WHERE kind = ? ORDER BY id DESC", ("a",)),
            ("SELECT COUNT(*) AS n FROM item WHERE kind = ?", ("b",)),
            ("SELECT DISTINCT kind FROM item", ()),
            ("SELECT id, price FROM item WHERE price BETWEEN ? AND ? "
             "LIMIT 5", (30, 90)),
        ]
        independent = [batch_db.execute(s, p) for s, p in statements]
        plan_result = execute_batch_plan(batch_db, statements)
        for alone, shared in zip(independent, plan_result.results):
            assert alone.columns == shared.columns
            assert alone.rows == shared.rows
            assert alone.rowcount == shared.rowcount

    def test_indexed_lookups_are_not_grouped(self, batch_db):
        statements = [
            ("SELECT price FROM item WHERE id = ?", (1,)),
            ("SELECT price FROM item WHERE id = ?", (2,)),
        ]
        plan_result = execute_batch_plan(batch_db, statements)
        assert plan_result.groups == []
        assert [r.rows_touched for r in plan_result.results] == [1, 1]

    def test_writes_split_segments(self, batch_db):
        statements = [
            ("SELECT COUNT(*) AS n FROM item WHERE kind = 'a'", ()),
            ("INSERT INTO item (id, kind, price) VALUES (100, 'a', 1)", ()),
            ("SELECT COUNT(*) AS n FROM item WHERE kind = 'a'", ()),
        ]
        plan_result = execute_batch_plan(batch_db, statements)
        before, _, after = plan_result.results
        # The read before the write must not see the inserted row; the
        # read after must.
        assert after.scalar() == before.scalar() + 1
        assert plan_result.groups == []  # nothing shareable per segment

    def test_errors_surface_in_statement_order(self, batch_db):
        # Statement 0 fails on the catalog; the shareable scans later in
        # the batch must not run (and raise) ahead of it.
        from repro.sqldb.errors import CatalogError

        statements = [
            ("SELECT id FROM missing", ()),
            ("SELECT id FROM item WHERE kind = 'a'", ()),
            ("SELECT id FROM item WHERE kind = 'b'", ()),
        ]
        with pytest.raises(CatalogError):
            execute_batch_plan(batch_db, statements)

    def test_parse_error_after_write_leaves_write_applied(self, batch_db):
        # A later statement's parse error must not abort the batch before
        # an earlier write executes (state parity with the direct path).
        from repro.sqldb.errors import SqlParseError

        statements = [
            ("INSERT INTO item (id, kind, price) VALUES (500, 'a', 9)", ()),
            ("THIS IS NOT SQL", ()),
        ]
        with pytest.raises(SqlParseError):
            execute_batch_plan(batch_db, statements)
        assert batch_db.table_size("item") == 51

    def test_read_error_surfaces_before_later_parse_error(self, batch_db):
        # Buffered reads flush (and raise their own errors) before a later
        # statement's parse error, matching sequential execution.
        from repro.sqldb.errors import SqlError, SqlParseError

        statements = [
            ("SELECT nope FROM item", ()),
            ("THIS IS NOT SQL", ()),
        ]
        with pytest.raises(SqlError) as excinfo:
            execute_batch_plan(batch_db, statements)
        assert not isinstance(excinfo.value, SqlParseError)

    def test_mixed_tables_group_per_table(self, batch_db):
        batch_db.execute("CREATE TABLE other (id INT PRIMARY KEY, v INT)")
        for i in range(10):
            batch_db.execute("INSERT INTO other (id, v) VALUES (?, ?)",
                             (i, i))
        statements = [
            ("SELECT id FROM item WHERE kind = 'a'", ()),
            ("SELECT v FROM other WHERE v > 3", ()),
            ("SELECT id FROM item WHERE kind = 'b'", ()),
            ("SELECT v FROM other WHERE v < 3", ()),
        ]
        plan_result = execute_batch_plan(batch_db, statements)
        assert len(plan_result.groups) == 2
        tables = sorted(g.table for g in plan_result.groups)
        assert tables == ["item", "other"]


class TestSharedScanThroughStack:
    """End-to-end: query store -> batch driver -> server batch-plan path."""

    def test_query_store_shared_scans(self, sim_stack):
        db, clock, server, driver, batch_driver = sim_stack
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT)")
        for i in range(30):
            db.execute("INSERT INTO t (id, grp) VALUES (?, ?)", (i, i % 3))
        from repro.core.query_store import QueryStore

        qs = QueryStore(batch_driver, shared_scans=True)
        ids = [qs.register_query("SELECT id FROM t WHERE grp = ?", (g,))
               for g in range(3)]
        values = [
            sorted(row[0] for row in qs.get_result_set(i).rows)
            for i in ids
        ]
        assert values[0] == [0, 3, 6, 9, 12, 15, 18, 21, 24, 27]
        assert batch_driver.stats.shared_scan_groups == 1
        assert batch_driver.stats.shared_scan_rows_saved == 60
        assert server.shared_scan_groups == 1

    def test_shared_batch_cheaper_than_direct(self, sim_stack):
        db, clock, server, driver, batch_driver = sim_stack
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT)")
        for i in range(200):
            db.execute("INSERT INTO t (id, grp) VALUES (?, ?)", (i, i % 20))
        statements = [("SELECT id FROM t WHERE grp = ?", (g,))
                      for g in range(20)]
        _, direct_ms = server.execute_batch(statements)
        _, shared_ms = server.execute_batch(statements, batch_optimize=True)
        assert shared_ms < direct_ms

    def test_batch_results_identical_both_paths(self, sim_stack):
        db, clock, server, driver, batch_driver = sim_stack
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT)")
        for i in range(40):
            db.execute("INSERT INTO t (id, grp) VALUES (?, ?)", (i, i % 4))
        statements = [("SELECT id FROM t WHERE grp = ? ORDER BY id", (g,))
                      for g in range(4)]
        direct, _ = server.execute_batch(statements)
        shared, _ = server.execute_batch(statements, batch_optimize=True)
        for a, b in zip(direct, shared):
            assert a.result.columns == b.result.columns
            assert a.result.rows == b.result.rows
