"""Tests for the planner subsystem: logical plans, optimizer rules (incl.
cost-based join reordering and index nested-loop joins), physical operators,
the plan cache (DDL + stats-epoch invalidation), and the batch shared-scan
optimizer."""

import pytest

from repro.sqldb import Database
from repro.sqldb.parser import parse
from repro.sqldb.plan import FROM_ORDER_OPTIONS
from repro.sqldb.plan.batch import execute_batch_plan


class TestOptimizerRules:
    def test_pk_predicate_selects_index_lookup(self, people_db):
        plan = people_db.explain("SELECT name FROM person WHERE id = 3")
        assert "IndexLookup" in plan
        assert "<pk>" in plan

    def test_secondary_index_selected(self, people_db):
        plan = people_db.explain("SELECT id FROM pet WHERE owner_id = 1")
        assert "idx_pet_owner" in plan

    def test_no_index_keeps_scan(self, people_db):
        plan = people_db.explain(
            "SELECT name FROM person WHERE city = 'boston'")
        assert "IndexLookup" not in plan
        assert "Scan" in plan

    def test_predicate_pushdown_below_join(self, people_db):
        plan = people_db.explain(
            "SELECT p.name FROM person p JOIN pet q ON p.id = q.owner_id "
            "WHERE p.city = 'boston' AND q.species = 'cat'")
        lines = plan.splitlines()
        join_depth = next(i for i, l in enumerate(lines) if "Join" in l)
        # One filter stays above the join (pet predicate), one is pushed
        # below it (person predicate).
        filters = [i for i, l in enumerate(lines) if "Filter" in l]
        assert any(i < join_depth for i in filters)
        assert any(i > join_depth for i in filters)

    def test_equi_join_gets_hash_strategy(self, people_db):
        plan = people_db.explain(
            "SELECT p.name FROM person p JOIN pet q ON p.id = q.owner_id")
        assert "strategy='hash'" in plan

    def test_non_equi_join_gets_nested_strategy(self, people_db):
        plan = people_db.explain(
            "SELECT p.name FROM person p JOIN pet q ON p.id > q.owner_id")
        assert "strategy='nested'" in plan


class TestPkInPointLookups:
    """``WHERE pk IN (...)`` plans as a multi-probe index lookup."""

    def test_pk_in_selects_index_lookup(self, people_db):
        plan = people_db.explain(
            "SELECT name FROM person WHERE id IN (1, 3)")
        assert "IndexLookup" in plan
        assert "<pk>" in plan

    def test_results_identical_to_scan_semantics(self, people_db):
        result = people_db.execute(
            "SELECT name FROM person WHERE id IN (3, 1)")
        # Insertion-order emission, exactly what a scan-and-filter yields.
        assert result.rows == [("alice",), ("carol",)]
        assert result.rows_touched == 2  # two probes, not a 4-row scan

    def test_parameterized_in_list(self, people_db):
        result = people_db.execute(
            "SELECT name FROM person WHERE id IN (?, ?)", (2, 4))
        assert result.rows == [("bob",), ("dave",)]
        assert result.rows_touched == 2

    def test_duplicates_and_nulls_in_list(self, people_db):
        result = people_db.execute(
            "SELECT name FROM person WHERE id IN (1, 1, NULL)")
        assert result.rows == [("alice",)]  # no duplicate emission

    def test_intersecting_in_conjuncts(self, people_db):
        result = people_db.execute(
            "SELECT name FROM person WHERE id IN (1, 2) AND id IN (2, 3)")
        assert result.rows == [("bob",)]
        assert result.rows_touched == 1

    def test_negated_in_keeps_scan(self, people_db):
        plan = people_db.explain(
            "SELECT name FROM person WHERE id NOT IN (1)")
        assert "IndexLookup" not in plan

    def test_non_pk_in_keeps_scan(self, people_db):
        plan = people_db.explain(
            "SELECT name FROM person WHERE city IN ('boston', 'sf')")
        assert "IndexLookup" not in plan

    def test_missing_key_simply_drops_out(self, people_db):
        result = people_db.execute(
            "SELECT name FROM person WHERE id IN (3, 999)")
        assert result.rows == [("carol",)]

    def test_update_delete_use_pk_probes(self, people_db):
        deleted = people_db.execute(
            "DELETE FROM person WHERE id IN (2, 4)")
        assert deleted.rowcount == 2
        assert deleted.rows_touched == 2  # probed, not scanned
        left = people_db.execute("SELECT id FROM person")
        assert [r[0] for r in left.rows] == [1, 3]

    def test_pk_probe_keys_metadata(self, people_db):
        executor = people_db.executor
        plan = executor.plan_for(
            parse("SELECT name FROM person WHERE id IN (?, ?)"))
        assert plan.pk_probe_keys(people_db, (1, 3)) == (
            "person", frozenset({1, 3}))
        eq_plan = executor.plan_for(
            parse("SELECT name FROM person WHERE id = 2"))
        assert eq_plan.pk_probe_keys(people_db, ()) == (
            "person", frozenset({2}))
        scan_plan = executor.plan_for(
            parse("SELECT name FROM person WHERE city = 'sf'"))
        assert scan_plan.pk_probe_keys(people_db, ()) is None

    def test_pk_in_members_are_not_grouped(self, people_db):
        batch = [("SELECT name FROM person WHERE id IN (1, 2)", ()),
                 ("SELECT name FROM person WHERE id IN (3, 4)", ())]
        outcome = execute_batch_plan(people_db, batch)
        assert outcome.groups == []  # point lookups stay on the fast path
        assert outcome.results[0].rows == [("alice",), ("bob",)]
        assert outcome.results[1].rows == [("carol",), ("dave",)]


class TestPushdownSemantics:
    """Pushdown must not change results, for inner and left joins."""

    def test_inner_join_results_unchanged(self, people_db):
        rows = people_db.query(
            "SELECT p.name, q.species FROM person p "
            "JOIN pet q ON p.id = q.owner_id "
            "WHERE p.city = 'boston' AND q.species = 'cat' ORDER BY q.id")
        assert rows == [{"name": "alice", "species": "cat"}]

    def test_left_join_base_predicate(self, people_db):
        # dave has no pets; the base predicate keeps him, the LEFT join
        # NULL-extends him.
        rows = people_db.query(
            "SELECT p.name, q.id FROM person p "
            "LEFT JOIN pet q ON p.id = q.owner_id WHERE p.city = 'sf'")
        assert rows == [{"name": "dave", "id": None}]

    def test_right_side_predicate_not_pushed_on_left_join(self, people_db):
        rows = people_db.query(
            "SELECT p.name FROM person p "
            "LEFT JOIN pet q ON p.id = q.owner_id WHERE q.id IS NULL")
        assert [r["name"] for r in rows] == ["dave"]


class TestJoinOrderingAndIndexJoins:
    """The cost-based rules added on top of the PR-1 pipeline."""

    @pytest.fixture
    def chain_db(self):
        def build(options=None):
            db = Database(optimizer_options=options)
            db.execute_script("""
            CREATE TABLE proj (id INT PRIMARY KEY, name TEXT);
            CREATE TABLE issue (id INT PRIMARY KEY, project_id INT,
                                creator_id INT, sev INT);
            CREATE TABLE usr (id INT PRIMARY KEY, login TEXT);
            CREATE INDEX idx_issue_proj ON issue (project_id)
            """)
            for i in range(5):
                db.execute("INSERT INTO proj (id, name) VALUES (?, ?)",
                           (i, f"p{i}"))
            for u in range(20):
                db.execute("INSERT INTO usr (id, login) VALUES (?, ?)",
                           (u, f"u{u}"))
            for i in range(200):
                db.execute(
                    "INSERT INTO issue (id, project_id, creator_id, sev) "
                    "VALUES (?, ?, ?, ?)", (i, i % 5, i % 20, i % 4))
            return db
        return build

    QUERY = ("SELECT u.login, i.id, p.name FROM usr u "
             "JOIN issue i ON i.creator_id = u.id "
             "JOIN proj p ON p.id = i.project_id WHERE p.id = 2")

    def test_reorder_rebases_chain_on_selective_table(self, chain_db):
        plan = chain_db().explain(self.QUERY)
        lines = plan.splitlines()
        # proj (pinned by PK) becomes the base of the chain; usr joins last.
        assert "IndexLookup [table='proj'" in plan
        assert lines.index(next(l for l in lines if "table='usr'" in l)) < \
            lines.index(next(l for l in lines if "table='issue'" in l))

    def test_reordered_results_match_from_order(self, chain_db):
        optimized = chain_db().execute(self.QUERY)
        baseline = chain_db(FROM_ORDER_OPTIONS).execute(self.QUERY)
        assert sorted(optimized.rows) == sorted(baseline.rows)
        assert optimized.rows_touched < baseline.rows_touched

    def test_left_join_is_a_reorder_barrier(self, chain_db):
        query = ("SELECT u.login FROM usr u "
                 "LEFT JOIN issue i ON i.creator_id = u.id "
                 "JOIN proj p ON p.id = i.project_id WHERE p.id < 3")
        optimized = chain_db().execute(query)
        baseline = chain_db(FROM_ORDER_OPTIONS).execute(query)
        assert sorted(optimized.rows) == sorted(baseline.rows)
        # The LEFT join pins usr as the base: the chain cannot re-base.
        plan = chain_db().explain(query)
        assert "Scan [table='usr'" in plan

    def test_index_join_touches_only_probed_rows(self, chain_db):
        db = chain_db()
        result = db.execute(
            "SELECT i.id, p.name FROM proj p "
            "JOIN issue i ON i.project_id = p.id WHERE p.id = 2")
        # 1 PK probe on proj + 40 issue rows via the project-id index.
        assert result.rows_touched == 41
        assert len(result.rows) == 40

    def test_index_join_falls_back_when_probes_exceed_scan(self):
        """Duplicate-heavy left keys: the adaptive runtime check must build
        a hash table instead of re-touching the same right rows."""
        db = Database()
        db.execute_script("""
        CREATE TABLE l (id INT PRIMARY KEY, k INT);
        CREATE TABLE r (id INT PRIMARY KEY, k INT);
        CREATE INDEX idx_r_k ON r (k)
        """)
        for i in range(50):
            db.execute("INSERT INTO l (id, k) VALUES (?, ?)", (i, i % 20))
        for i in range(20):
            db.execute("INSERT INTO r (id, k) VALUES (?, ?)", (i, i))
        # The parameterised range predicate under-estimates the left
        # stream (parameter bounds get no snapshot range statistics, only
        # the heuristic fraction), so the plan picks the index strategy;
        # at run time 50 probes of 1 row each exceed the 20-row table and
        # the operator hashes instead.
        query = ("SELECT l.id, r.id FROM l "
                 "JOIN r ON r.k = l.k WHERE l.id >= ?")
        assert "strategy='index'" in db.explain(query)
        result = db.execute(query, (0,))
        assert len(result.rows) == 50
        assert result.rows_touched == 50 + 20  # base scan + hash build

    def test_where_conjunct_follows_rebased_chain(self, people_db):
        # With the join re-based on pet, the pet-only WHERE conjunct lands
        # on the new base (below the join) and person is probed by PK.
        plan = people_db.explain(
            "SELECT p.name FROM person p JOIN pet q ON p.id = q.owner_id "
            "WHERE q.species = 'cat'")
        lines = plan.splitlines()
        filter_line = next(i for i, l in enumerate(lines)
                           if "species" in l and "Filter" in l)
        join_line = next(i for i, l in enumerate(lines) if "Join" in l)
        assert join_line < filter_line  # filter sits on the re-based scan
        assert "strategy='index', index_name='<pk>'" in plan
        rows = people_db.query(
            "SELECT p.name FROM person p JOIN pet q ON p.id = q.owner_id "
            "WHERE q.species = 'cat' ORDER BY q.id")
        assert [r["name"] for r in rows] == ["alice", "bob"]

    def test_cross_join_order_preserved_without_connection(self, people_db):
        # ON conditions referencing only one side leave no equi edge: the
        # optimizer must not invent an order that changes semantics.
        rows = people_db.query(
            "SELECT p.name, q.id FROM person p "
            "JOIN pet q ON q.species = 'cat' WHERE p.id = 1")
        assert sorted(r["id"] for r in rows) == [10, 12]


class TestNullJoinKeys:
    """SQL NULL never equals NULL: join keys that are NULL must not match
    under any join strategy (hash, index nested-loop, nested loop)."""

    @pytest.fixture
    def null_db(self):
        db = Database()
        db.execute_script("""
        CREATE TABLE a (id INT PRIMARY KEY, k INT);
        CREATE TABLE b (id INT PRIMARY KEY, k INT);
        CREATE INDEX idx_b_k ON b (k)
        """)
        for i, k in enumerate([1, 2, None, None]):
            db.execute("INSERT INTO a (id, k) VALUES (?, ?)", (i, k))
        # b is wide enough (and distinct enough in k) that probing its k
        # index per a-row prices below building a hash table over it, so
        # the default planner picks the index strategy the NULL-key tests
        # exercise; only k=1 matches a.
        for i, k in enumerate([1, None, 3, None, 5, 6, 7, 8, 9, 10]):
            db.execute("INSERT INTO b (id, k) VALUES (?, ?)", (i, k))
        return db

    def test_hash_join_null_keys_never_match(self, null_db):
        null_db.optimizer_options = FROM_ORDER_OPTIONS  # forces hash
        rows = null_db.query(
            "SELECT a.id, b.id FROM a JOIN b ON b.k = a.k")
        assert len(rows) == 1  # only k=1 pairs up

    def test_index_join_null_keys_never_match(self, null_db):
        query = ("SELECT a.id, b.id FROM a JOIN b ON b.k = a.k "
                 "WHERE a.id >= 0")
        assert "strategy='index'" in null_db.explain(query)
        rows = null_db.query(query)
        assert len(rows) == 1

    def test_nested_loop_null_keys_never_match(self, null_db):
        rows = null_db.query(
            "SELECT a.id, b.id FROM a JOIN b ON b.k = a.k AND b.k < 99 "
            "OR b.k = a.k AND b.k > 99")  # OR defeats the equi extraction
        assert len(rows) == 1

    def test_left_join_null_keys_extend_with_nulls(self, null_db):
        rows = null_db.query(
            "SELECT a.id AS aid, b.id AS bid FROM a LEFT JOIN b ON b.k = a.k")
        matched = [r for r in rows if r["bid"] is not None]
        assert len(matched) == 1
        assert len(rows) == 4  # every a row survives


class TestPlanCache:
    def test_repeated_statement_reuses_plan(self, people_db):
        stmt = parse("SELECT name FROM person WHERE id = ?")
        plan1 = people_db.executor.plan_for(stmt)
        plan2 = people_db.executor.plan_for(stmt)
        assert plan1 is plan2

    def test_ddl_invalidates_plans(self, people_db):
        stmt = parse("SELECT * FROM person WHERE age = 34")
        plan1 = people_db.executor.plan_for(stmt)
        people_db.execute("CREATE INDEX idx_person_age ON person (age)")
        plan2 = people_db.executor.plan_for(stmt)
        assert plan1 is not plan2
        # The new plan uses the new index.
        result = people_db.execute("SELECT * FROM person WHERE age = 34")
        assert result.rows_touched == 1

    def test_param_values_do_not_poison_plan(self, people_db):
        # The same prepared statement must fall back to a scan when the
        # parameter is NULL (col = NULL never matches) and use the index
        # when it is not.
        sql = "SELECT id FROM pet WHERE owner_id = ?"
        indexed = people_db.execute(sql, (1,))
        assert indexed.rows_touched == 2
        null_param = people_db.execute(sql, (None,))
        assert null_param.rows == []
        assert null_param.rows_touched == 4  # degraded to a scan

    def test_drop_index_invalidates_plans(self, people_db):
        stmt = parse("SELECT id FROM pet WHERE owner_id = 1")
        plan1 = people_db.executor.plan_for(stmt)
        people_db.execute("DROP INDEX idx_pet_owner")
        plan2 = people_db.executor.plan_for(stmt)
        assert plan1 is not plan2
        # Without the index the statement reverts to a full scan.
        result = people_db.execute("SELECT id FROM pet WHERE owner_id = 1")
        assert result.rows_touched == 4

    def test_stats_epoch_reoptimizes_after_growth(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        stmt = parse("SELECT v FROM t WHERE v = 1")
        plan1 = db.executor.plan_for(stmt)
        built = db.executor.plans_built
        # Growing the table >2x past the baseline ticks the stats epoch;
        # the cached plan may no longer be reused.
        for i in range(30):
            db.execute("INSERT INTO t (id, v) VALUES (?, ?)", (i, i))
        assert db.catalog.stats_epoch.value > 0
        plan2 = db.executor.plan_for(stmt)
        assert plan1 is not plan2
        assert db.executor.plans_built == built + 1

    def test_truncate_reoptimizes_via_stats_epoch(self, db):
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for i in range(30):
            db.execute("INSERT INTO t (id, v) VALUES (?, ?)", (i, i))
        stmt = parse("SELECT v FROM t WHERE v = 1")
        plan1 = db.executor.plan_for(stmt)
        epoch = db.catalog.stats_epoch.value
        result = db.execute("TRUNCATE TABLE t")
        assert result.rowcount == 30
        assert db.table_size("t") == 0
        assert db.catalog.stats_epoch.value > epoch
        assert db.executor.plan_for(stmt) is not plan1

    def test_stable_tables_keep_cached_plans(self, people_db):
        """No DDL, no >2x size shift: the plan must be reused, and the
        optimizer must not run again (counter stays flat)."""
        stmt = parse("SELECT name FROM person WHERE id = ?")
        plan1 = people_db.executor.plan_for(stmt)
        built = people_db.executor.plans_built
        people_db.execute("INSERT INTO person (id, name) VALUES (99, 'eve')")
        people_db.execute("DELETE FROM person WHERE id = 99")
        assert people_db.executor.plan_for(stmt) is plan1
        assert people_db.executor.plans_built == built

    def test_changing_optimizer_options_invalidates_plans(self, people_db):
        stmt = parse(
            "SELECT p.name FROM person p JOIN pet q ON p.id = q.owner_id")
        plan1 = people_db.executor.plan_for(stmt)
        people_db.optimizer_options = FROM_ORDER_OPTIONS
        plan2 = people_db.executor.plan_for(stmt)
        assert plan1 is not plan2

    def test_truncate_of_small_table_still_invalidates(self, people_db):
        # person never crossed the stats-epoch growth floor, but TRUNCATE
        # must invalidate its plans regardless.
        stmt = parse("SELECT name FROM person WHERE age > 0")
        plan1 = people_db.executor.plan_for(stmt)
        people_db.execute("TRUNCATE person")
        assert people_db.executor.plan_for(stmt) is not plan1

    def test_stale_plan_reuse_impossible_after_any_invalidation(self, db):
        """Every invalidation class forces exactly one re-optimization."""
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        stmt = parse("SELECT v FROM t WHERE v = ?")
        invalidations = [
            "CREATE INDEX idx_t_v ON t (v)",
            "DROP INDEX idx_t_v",
            "CREATE TABLE other (id INT PRIMARY KEY)",
            "DROP TABLE other",
        ]
        db.executor.plan_for(stmt)
        for ddl in invalidations:
            before = db.executor.plans_built
            db.execute(ddl)
            db.executor.plan_for(stmt)
            assert db.executor.plans_built == before + 1, ddl
            db.executor.plan_for(stmt)
            assert db.executor.plans_built == before + 1, ddl


class TestSharedScanBatch:
    @pytest.fixture
    def batch_db(self):
        # Result cache off: these tests measure the shared-scan machinery
        # itself, and several execute the same statements independently
        # first — cached rows would short-circuit the groups under test
        # (cache-vs-group interplay is covered in test_result_cache.py).
        db = Database(result_cache_size=0)
        db.execute("CREATE TABLE item (id INT PRIMARY KEY, kind TEXT, "
                   "price INT)")
        for i in range(50):
            db.execute("INSERT INTO item (id, kind, price) VALUES (?, ?, ?)",
                       (i, "ab"[i % 2], i * 3))
        return db

    def test_shared_scan_touches_fewer_rows(self, batch_db):
        statements = [
            ("SELECT id FROM item WHERE kind = ?", ("a",)),
            ("SELECT id FROM item WHERE kind = ?", ("b",)),
            ("SELECT id, price FROM item WHERE price > ?", (60,)),
        ]
        independent = [batch_db.execute(s, p) for s, p in statements]
        independent_touched = sum(r.rows_touched for r in independent)
        plan_result = execute_batch_plan(batch_db, statements)
        shared_touched = sum(
            r.rows_touched for r in plan_result.results)
        assert independent_touched == 150  # three full scans
        assert shared_touched == 50        # one shared scan
        assert len(plan_result.groups) == 1
        assert plan_result.groups[0].rows_saved == 100

    def test_results_byte_identical_to_independent_execution(self, batch_db):
        statements = [
            ("SELECT id FROM item WHERE kind = ? ORDER BY id DESC", ("a",)),
            ("SELECT COUNT(*) AS n FROM item WHERE kind = ?", ("b",)),
            ("SELECT DISTINCT kind FROM item", ()),
            ("SELECT id, price FROM item WHERE price BETWEEN ? AND ? "
             "LIMIT 5", (30, 90)),
        ]
        independent = [batch_db.execute(s, p) for s, p in statements]
        plan_result = execute_batch_plan(batch_db, statements)
        for alone, shared in zip(independent, plan_result.results):
            assert alone.columns == shared.columns
            assert alone.rows == shared.rows
            assert alone.rowcount == shared.rowcount

    def test_indexed_lookups_are_not_grouped(self, batch_db):
        statements = [
            ("SELECT price FROM item WHERE id = ?", (1,)),
            ("SELECT price FROM item WHERE id = ?", (2,)),
        ]
        plan_result = execute_batch_plan(batch_db, statements)
        assert plan_result.groups == []
        assert [r.rows_touched for r in plan_result.results] == [1, 1]

    def test_writes_split_segments(self, batch_db):
        statements = [
            ("SELECT COUNT(*) AS n FROM item WHERE kind = 'a'", ()),
            ("INSERT INTO item (id, kind, price) VALUES (100, 'a', 1)", ()),
            ("SELECT COUNT(*) AS n FROM item WHERE kind = 'a'", ()),
        ]
        plan_result = execute_batch_plan(batch_db, statements)
        before, _, after = plan_result.results
        # The read before the write must not see the inserted row; the
        # read after must.
        assert after.scalar() == before.scalar() + 1
        assert plan_result.groups == []  # nothing shareable per segment

    def test_errors_surface_in_statement_order(self, batch_db):
        # Statement 0 fails on the catalog; the shareable scans later in
        # the batch must not run (and raise) ahead of it.
        from repro.sqldb.errors import CatalogError

        statements = [
            ("SELECT id FROM missing", ()),
            ("SELECT id FROM item WHERE kind = 'a'", ()),
            ("SELECT id FROM item WHERE kind = 'b'", ()),
        ]
        with pytest.raises(CatalogError):
            execute_batch_plan(batch_db, statements)

    def test_parse_error_after_write_leaves_write_applied(self, batch_db):
        # A later statement's parse error must not abort the batch before
        # an earlier write executes (state parity with the direct path).
        from repro.sqldb.errors import SqlParseError

        statements = [
            ("INSERT INTO item (id, kind, price) VALUES (500, 'a', 9)", ()),
            ("THIS IS NOT SQL", ()),
        ]
        with pytest.raises(SqlParseError):
            execute_batch_plan(batch_db, statements)
        assert batch_db.table_size("item") == 51

    def test_read_error_surfaces_before_later_parse_error(self, batch_db):
        # Buffered reads flush (and raise their own errors) before a later
        # statement's parse error, matching sequential execution.
        from repro.sqldb.errors import SqlError, SqlParseError

        statements = [
            ("SELECT nope FROM item", ()),
            ("THIS IS NOT SQL", ()),
        ]
        with pytest.raises(SqlError) as excinfo:
            execute_batch_plan(batch_db, statements)
        assert not isinstance(excinfo.value, SqlParseError)

    def test_mixed_tables_group_per_table(self, batch_db):
        batch_db.execute("CREATE TABLE other (id INT PRIMARY KEY, v INT)")
        for i in range(10):
            batch_db.execute("INSERT INTO other (id, v) VALUES (?, ?)",
                             (i, i))
        statements = [
            ("SELECT id FROM item WHERE kind = 'a'", ()),
            ("SELECT v FROM other WHERE v > 3", ()),
            ("SELECT id FROM item WHERE kind = 'b'", ()),
            ("SELECT v FROM other WHERE v < 3", ()),
        ]
        plan_result = execute_batch_plan(batch_db, statements)
        assert len(plan_result.groups) == 2
        tables = sorted(g.table for g in plan_result.groups)
        assert tables == ["item", "other"]


class TestSharedScanThroughStack:
    """End-to-end: query store -> batch driver -> server batch-plan path."""

    def test_query_store_shared_scans(self, sim_stack):
        db, clock, server, driver, batch_driver = sim_stack
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT)")
        for i in range(30):
            db.execute("INSERT INTO t (id, grp) VALUES (?, ?)", (i, i % 3))
        from repro.core.query_store import QueryStore

        qs = QueryStore(batch_driver, shared_scans=True)
        ids = [qs.register_query("SELECT id FROM t WHERE grp = ?", (g,))
               for g in range(3)]
        values = [
            sorted(row[0] for row in qs.get_result_set(i).rows)
            for i in ids
        ]
        assert values[0] == [0, 3, 6, 9, 12, 15, 18, 21, 24, 27]
        assert batch_driver.stats.shared_scan_groups == 1
        assert batch_driver.stats.shared_scan_rows_saved == 60
        assert server.shared_scan_groups == 1

    def test_shared_batch_cheaper_than_direct(self, sim_stack):
        db, clock, server, driver, batch_driver = sim_stack
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT)")
        for i in range(200):
            db.execute("INSERT INTO t (id, grp) VALUES (?, ?)", (i, i % 20))
        statements = [("SELECT id FROM t WHERE grp = ?", (g,))
                      for g in range(20)]
        _, direct_ms = server.execute_batch(statements)
        _, shared_ms = server.execute_batch(statements, batch_optimize=True)
        assert shared_ms < direct_ms

    def test_batch_results_identical_both_paths(self, sim_stack):
        db, clock, server, driver, batch_driver = sim_stack
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT)")
        for i in range(40):
            db.execute("INSERT INTO t (id, grp) VALUES (?, ?)", (i, i % 4))
        statements = [("SELECT id FROM t WHERE grp = ? ORDER BY id", (g,))
                      for g in range(4)]
        direct, _ = server.execute_batch(statements)
        shared, _ = server.execute_batch(statements, batch_optimize=True)
        for a, b in zip(direct, shared):
            assert a.result.columns == b.result.columns
            assert a.result.rows == b.result.rows
