"""Chunk-boundary and engine-parity tests for the chunked engines.

The batch engine pulls chunks of ``CHUNK_SIZE`` wide rows through
plan-compiled expression closures; the columnar engine exchanges
``ColumnChunk`` column arrays with selection vectors and fused
predicates; the row engine is the interpreted row-at-a-time shim kept
for differential testing.  These tests pin the edges the chunking can
get wrong — empty inputs, result sizes straddling the chunk boundary,
LIMIT cutting mid-chunk, NULL-heavy data through the compiled
three-valued logic — plus the observability surface (``engine_stats``,
the explain Engine trailer, EXPLAIN ANALYZE) and the zero-copy scan's
no-mutation contract.
"""

import pytest

from repro.sqldb import Database
from repro.sqldb.plan.physical import CHUNK_SIZE

ENGINES = ("batch", "columnar", "row")


def _seed(db, n_rows):
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT, s TEXT)")
    for i in range(n_rows):
        # v cycles through NULL every third row; s through a few labels.
        db.execute("INSERT INTO t (id, v, s) VALUES (?, ?, ?)",
                   (i, None if i % 3 == 0 else i % 97, f"s{i % 5}"))
    return db


def _pair(n_rows):
    """The same seeded table under every engine (result cache off), in
    ``ENGINES`` order: ``(batch, columnar, row)``."""
    return tuple(_seed(Database(result_cache_size=0, engine=e), n_rows)
                 for e in ENGINES)


def _agree(*args):
    """``_agree(db, db, ..., sql[, params])`` — execute under every given
    engine; exact row, column and accounting agreement."""
    if isinstance(args[-1], tuple):
        *dbs, sql, params = args
    else:
        *dbs, sql = args
        params = ()
    results = [db.execute(sql, params) for db in dbs]
    first = results[0]
    for db, other in zip(dbs[1:], results[1:]):
        assert other.rows == first.rows, db.engine
        assert other.columns == first.columns, db.engine
        assert other.rows_touched == first.rows_touched, db.engine
    return first


# ---------------------------------------------------------------------------
# Chunk boundaries
# ---------------------------------------------------------------------------


def test_empty_table():
    dbs = _pair(0)
    assert _agree(*dbs, "SELECT id, v FROM t").rows == []
    assert _agree(*dbs, "SELECT id FROM t WHERE v > ?", (5,)).rows == []
    assert _agree(*dbs, "SELECT COUNT(*) FROM t").rows == [(0,)]
    assert _agree(*dbs, "SELECT s, COUNT(v) FROM t GROUP BY s").rows == []


def test_empty_join_sides():
    dbs = _pair(0)
    for db in dbs:
        db.execute("CREATE TABLE u (id INT PRIMARY KEY, w INT)")
        db.execute("INSERT INTO u (id, w) VALUES (1, 10)")
    result = _agree(*dbs, "SELECT t.id, u.w FROM t JOIN u ON t.v = u.id")
    assert result.rows == []
    result = _agree(*dbs, "SELECT u.id, t.v FROM u LEFT JOIN t ON t.v = u.id")
    assert result.rows == [(1, None)]


@pytest.mark.parametrize("size", [1, CHUNK_SIZE - 1, CHUNK_SIZE,
                                  CHUNK_SIZE + 1])
def test_result_sizes_straddling_chunk_boundary(size):
    batch_db, columnar_db, row_db = _pair(CHUNK_SIZE + 1)
    result = _agree(batch_db, columnar_db, row_db,
                    "SELECT id, v FROM t WHERE id < ?", (size,))
    assert len(result.rows) == size
    assert result.rows_touched == CHUNK_SIZE + 1
    # A multi-chunk scan really flowed through the chunked operators.
    assert batch_db.executor.batches_executed > 0
    assert columnar_db.executor.batches_executed > 0
    assert row_db.executor.batches_executed == 0


def test_limit_cuts_mid_chunk():
    n = CHUNK_SIZE + 400
    dbs = _pair(n)
    for limit in (1, 700, CHUNK_SIZE, CHUNK_SIZE + 100):
        result = _agree(*dbs, f"SELECT id FROM t LIMIT {limit}")
        assert len(result.rows) == limit
    # LIMIT above a sort still returns exact-order-identical prefixes.
    result = _agree(*dbs, "SELECT id, v FROM t ORDER BY v DESC, id LIMIT 10")
    assert len(result.rows) == 10


def test_limit_hint_stops_early_in_all_engines():
    """With an ordered index the sort is elided and the limit hint stops
    the scan after limit+offset rows — the one early-exit in the engine,
    which must charge identical ``rows_touched`` under every engine."""
    n = CHUNK_SIZE + 400
    dbs = _pair(n)
    for db in dbs:
        db.execute("CREATE INDEX idx_t_v ON t (v) USING ORDERED")
    for limit in (1, 700, CHUNK_SIZE + 100):
        result = _agree(*dbs, f"SELECT id, v FROM t ORDER BY v LIMIT {limit}")
        assert len(result.rows) == limit
        # Early exit: far fewer rows touched than the full table.
        assert result.rows_touched <= limit + 1
    result = _agree(*dbs, "SELECT id, v FROM t ORDER BY v LIMIT 50 OFFSET 25")
    assert len(result.rows) == 50
    assert result.rows_touched <= 76


def test_null_heavy_columns():
    dbs = _pair(600)
    for sql, params in (
            ("SELECT id FROM t WHERE v > ?", (40,)),
            ("SELECT id FROM t WHERE v IS NULL", ()),
            ("SELECT id FROM t WHERE v IS NOT NULL AND v < ?", (30,)),
            ("SELECT id FROM t WHERE v BETWEEN ? AND ?", (10, 20)),
            ("SELECT id FROM t WHERE v IN (1, 2, NULL, 3)", ()),
            ("SELECT id FROM t WHERE NOT (v > ?)", (50,)),
            ("SELECT id, v FROM t ORDER BY v, id", ()),
            ("SELECT s, COUNT(v), SUM(v), MIN(v), MAX(v) FROM t "
             "GROUP BY s ORDER BY s", ()),
            ("SELECT DISTINCT v FROM t ORDER BY v", ()),
            ("SELECT id FROM t WHERE v = ? OR v IS NULL", (7,)),
    ):
        _agree(*dbs, sql, params)


def test_all_null_column():
    dbs = tuple(Database(result_cache_size=0, engine=e) for e in ENGINES)
    for db in dbs:
        db.execute("CREATE TABLE n (id INT PRIMARY KEY, v INT)")
        for i in range(50):
            db.execute("INSERT INTO n (id, v) VALUES (?, NULL)", (i,))
    assert _agree(*dbs, "SELECT COUNT(v), SUM(v), AVG(v) FROM n").rows == \
        [(0, None, None)]
    assert _agree(*dbs, "SELECT id FROM n WHERE v = v").rows == []


# ---------------------------------------------------------------------------
# Zero-copy scan safety
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["batch", "columnar"])
def test_zero_copy_scan_does_not_leak_mutable_storage_rows(engine):
    """Single-table full-width scans hand storage data straight to the
    operators (no ``_pad`` copy); results must still be immutable
    snapshots — a later UPDATE may not rewrite previously returned rows."""
    db = _seed(Database(result_cache_size=0, engine=engine), 100)
    before = db.execute("SELECT id, v, s FROM t WHERE id < 10")
    snapshot = [tuple(r) for r in before.rows]
    db.execute("UPDATE t SET v = 999, s = 'mut' WHERE id < 10")
    assert [tuple(r) for r in before.rows] == snapshot
    after = db.execute("SELECT id, v, s FROM t WHERE id < 10")
    assert all(r[1] == 999 and r[2] == "mut" for r in after.rows)


def test_engines_agree_after_interleaved_writes():
    dbs = _pair(300)
    for db in dbs:
        db.execute("UPDATE t SET v = v + 1 WHERE v > 50")
        db.execute("DELETE FROM t WHERE id % 7 = 0")
    _agree(*dbs, "SELECT id, v, s FROM t WHERE v >= ?", (40,))
    _agree(*dbs, "SELECT COUNT(*) FROM t")


# ---------------------------------------------------------------------------
# Observability: engine selection, counters, explain surfaces
# ---------------------------------------------------------------------------


def test_engine_validation():
    with pytest.raises(ValueError) as err:
        Database(engine="vectorised")
    # The error names every accepted engine.
    for name in ENGINES:
        assert f"'{name}'" in str(err.value)
    for engine in ENGINES:
        assert Database(engine=engine).engine == engine


def test_engine_flip_rebinds_chunk_layout():
    """Flipping ``db.engine`` mid-session re-routes the *cached* plan's
    compiled closures to the new engine's chunk layout: a write between
    flips must be visible under every engine, and results must stay
    identical through columnar -> row -> columnar round trips."""
    db = _seed(Database(result_cache_size=0, engine="columnar"), 300)
    sql = "SELECT id, v, s FROM t WHERE v > ? ORDER BY id"
    first = db.execute(sql, (40,)).rows
    db.engine = "row"
    assert db.execute(sql, (40,)).rows == first
    # Mutate while the row engine is active: the columnar snapshot built
    # for the first execution is now stale.
    db.execute("UPDATE t SET v = 1 WHERE id % 2 = 0")
    after_write = db.execute(sql, (40,)).rows
    assert after_write != first
    db.engine = "columnar"
    assert db.execute(sql, (40,)).rows == after_write
    db.engine = "batch"
    assert db.execute(sql, (40,)).rows == after_write


def test_engine_stats_counts_batches():
    batch_db, columnar_db, row_db = _pair(CHUNK_SIZE + 1)
    for db in (batch_db, columnar_db, row_db):
        db.execute("SELECT id FROM t WHERE v > 10")
    for db in (batch_db, columnar_db):
        stats = db.engine_stats()
        assert stats["engine"] == db.engine
        assert stats["batches_executed"] > 0
    assert row_db.engine_stats() == {
        "engine": "row",
        "batches_executed": 0,
        "plans_built": row_db.executor.plans_built,
    }


def test_engine_flippable_between_statements():
    db = _seed(Database(result_cache_size=0, engine="batch"), 200)
    batch_rows = db.execute("SELECT id, v FROM t WHERE v > 5").rows
    flipped_at = db.executor.batches_executed
    assert flipped_at > 0
    db.engine = "row"
    row_rows = db.execute("SELECT id, v FROM t WHERE v > 5").rows
    assert row_rows == batch_rows
    # The cached plan served both paths; no batches under the row engine.
    assert db.executor.batches_executed == flipped_at


def test_explain_engine_trailer():
    db = _seed(Database(engine="batch"), 10)
    with_params = db.explain("SELECT id FROM t WHERE v > ?", params=(1,))
    assert "Engine [name='batch', batches_executed=" in with_params
    # The golden plain-explain surface is unchanged: no Engine line.
    plain = db.explain("SELECT id FROM t WHERE v > ?")
    assert "Engine [" not in plain
    db.engine = "row"
    assert "Engine [name='row'" in db.explain(
        "SELECT id FROM t WHERE v > ?", params=(1,))
    db.engine = "columnar"
    assert "Engine [name='columnar'" in db.explain(
        "SELECT id FROM t WHERE v > ?", params=(1,))


def test_explain_analyze_shape():
    db = _seed(Database(result_cache_size=0, engine="batch"), 500)
    out = db.explain(
        "SELECT s, COUNT(*) FROM t WHERE v > ? GROUP BY s ORDER BY s",
        params=(10,), analyze=True)
    lines = out.splitlines()
    assert lines[0].startswith("EXPLAIN ANALYZE [engine=batch, rows=")
    assert "rows_touched=500" in lines[0]
    assert "total_ms=" in lines[0]
    body = "\n".join(lines[1:])
    assert "SeqScan(t) [rows=500, chunks=1, time=" in body
    assert "Filter [rows=" in body
    assert "Aggregate [rows=" in body
    # Batch chunks carry no selection vectors: no density annotation.
    assert "sel=" not in body
    # Deeper operators are indented further than their consumers.
    scan_line = next(l for l in lines if "SeqScan(t)" in l)
    filter_line = next(l for l in lines if "Filter [" in l)
    assert (len(scan_line) - len(scan_line.lstrip())
            > len(filter_line) - len(filter_line.lstrip()))


def test_explain_analyze_columnar_chunks_and_density():
    """Pins the columnar EXPLAIN ANALYZE annotation format: every chunked
    source operator reports ``chunks=``; operators that narrow selection
    vectors report ``sel=`` as live rows over chunk capacity."""
    db = _seed(Database(result_cache_size=0, engine="columnar"),
               2 * CHUNK_SIZE)
    out = db.explain("SELECT id FROM t WHERE s = 's1'",
                     params=(), analyze=True)
    lines = out.splitlines()
    assert lines[0].startswith("EXPLAIN ANALYZE [engine=columnar, rows=")
    scan_line = next(l for l in lines if "SeqScan(t)" in l)
    filter_line = next(l for l in lines if "Filter [" in l)
    assert f"SeqScan(t) [rows={2 * CHUNK_SIZE}, chunks=2, sel=100.0%, " \
        f"time=" in scan_line
    # s cycles through 5 labels: the filter keeps exactly 1/5 of rows.
    assert "chunks=2" in filter_line
    assert "sel=20.0%" in filter_line
    # Row engine output is unchanged: no chunk annotations at all.
    db.engine = "row"
    row_out = db.explain("SELECT id FROM t WHERE s = 's1'",
                         params=(), analyze=True)
    assert "chunks=" not in row_out
    assert "sel=" not in row_out


def test_explain_analyze_columnar_reports_chunks_skipped():
    """Pins the ``chunks_skipped=`` annotation: a chunk-order-correlated
    range bound lets zone maps prove two of three chunks irrelevant, the
    base scan reports them, and header ``rows_touched`` still charges
    every storage row (the cost currency is engine-invariant).  The row
    engine's output carries no chunk annotations at all."""
    db = _seed(Database(result_cache_size=0, engine="columnar"),
               3 * CHUNK_SIZE)
    sql = "SELECT id FROM t WHERE id < ? AND v > ?"
    out = db.explain(sql, params=(CHUNK_SIZE, 0), analyze=True)
    assert f"rows_touched={3 * CHUNK_SIZE}" in out.splitlines()[0]
    scan_line = next(l for l in out.splitlines() if "SeqScan(t)" in l)
    assert (f"SeqScan(t) [rows={CHUNK_SIZE}, chunks=1, chunks_skipped=2, "
            f"sel=100.0%, time=") in scan_line
    db.engine = "row"
    row_out = db.explain(sql, params=(CHUNK_SIZE, 0), analyze=True)
    assert f"rows_touched={3 * CHUNK_SIZE}" in row_out.splitlines()[0]
    assert "chunks_skipped=" not in row_out
    assert "chunks=" not in row_out and "sel=" not in row_out


def test_explain_analyze_is_side_effect_light():
    db = _seed(Database(engine="batch"), 50)
    statements = db.statements_executed
    db.explain("SELECT id FROM t WHERE v > ?", params=(3,), analyze=True)
    assert db.statements_executed == statements
    # The analyze run did not populate the result cache.
    assert "status='miss'" in db.explain(
        "SELECT id FROM t WHERE v > ?", params=(3,))


def test_explain_analyze_rows_match_execution():
    dbs = _pair(800)
    batch_db = dbs[0]
    sql = "SELECT id, v FROM t WHERE v > ? ORDER BY v LIMIT 20"
    executed = _agree(*dbs, sql, (30,))
    out = batch_db.explain(sql, params=(30,), analyze=True)
    assert f"rows={len(executed.rows)}" in out.splitlines()[0]
    assert f"rows_touched={executed.rows_touched}" in out.splitlines()[0]
