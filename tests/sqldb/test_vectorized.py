"""Chunk-boundary and engine-parity tests for the vectorized batch engine.

The batch engine pulls chunks of ``CHUNK_SIZE`` rows through
plan-compiled expression closures; the row engine is the interpreted
row-at-a-time shim kept for differential testing.  These tests pin the
edges the chunking can get wrong — empty inputs, result sizes straddling
the chunk boundary, LIMIT cutting mid-chunk, NULL-heavy data through the
compiled three-valued logic — plus the observability surface
(``engine_stats``, the explain Engine trailer, EXPLAIN ANALYZE) and the
zero-copy scan's no-mutation contract.
"""

import pytest

from repro.sqldb import Database
from repro.sqldb.plan.physical import CHUNK_SIZE


def _seed(db, n_rows):
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT, s TEXT)")
    for i in range(n_rows):
        # v cycles through NULL every third row; s through a few labels.
        db.execute("INSERT INTO t (id, v, s) VALUES (?, ?, ?)",
                   (i, None if i % 3 == 0 else i % 97, f"s{i % 5}"))
    return db


def _pair(n_rows):
    """The same seeded table under both engines (result cache off)."""
    batch = _seed(Database(result_cache_size=0, engine="batch"), n_rows)
    row = _seed(Database(result_cache_size=0, engine="row"), n_rows)
    return batch, row


def _agree(batch_db, row_db, sql, params=()):
    """Execute under both engines; exact row and accounting agreement."""
    batch = batch_db.execute(sql, params)
    row = row_db.execute(sql, params)
    assert batch.rows == row.rows
    assert batch.columns == row.columns
    assert batch.rows_touched == row.rows_touched
    return batch


# ---------------------------------------------------------------------------
# Chunk boundaries
# ---------------------------------------------------------------------------


def test_empty_table():
    batch_db, row_db = _pair(0)
    assert _agree(batch_db, row_db, "SELECT id, v FROM t").rows == []
    assert _agree(batch_db, row_db,
                  "SELECT id FROM t WHERE v > ?", (5,)).rows == []
    assert _agree(batch_db, row_db,
                  "SELECT COUNT(*) FROM t").rows == [(0,)]
    assert _agree(batch_db, row_db,
                  "SELECT s, COUNT(v) FROM t GROUP BY s").rows == []


def test_empty_join_sides():
    batch_db, row_db = _pair(0)
    for db in (batch_db, row_db):
        db.execute("CREATE TABLE u (id INT PRIMARY KEY, w INT)")
        db.execute("INSERT INTO u (id, w) VALUES (1, 10)")
    result = _agree(batch_db, row_db,
                    "SELECT t.id, u.w FROM t JOIN u ON t.v = u.id")
    assert result.rows == []
    result = _agree(batch_db, row_db,
                    "SELECT u.id, t.v FROM u LEFT JOIN t ON t.v = u.id")
    assert result.rows == [(1, None)]


@pytest.mark.parametrize("size", [1, CHUNK_SIZE - 1, CHUNK_SIZE,
                                  CHUNK_SIZE + 1])
def test_result_sizes_straddling_chunk_boundary(size):
    batch_db, row_db = _pair(CHUNK_SIZE + 1)
    result = _agree(batch_db, row_db,
                    "SELECT id, v FROM t WHERE id < ?", (size,))
    assert len(result.rows) == size
    assert result.rows_touched == CHUNK_SIZE + 1
    # A multi-chunk scan really flowed through the batch operators.
    assert batch_db.executor.batches_executed > 0
    assert row_db.executor.batches_executed == 0


def test_limit_cuts_mid_chunk():
    n = CHUNK_SIZE + 400
    batch_db, row_db = _pair(n)
    for limit in (1, 700, CHUNK_SIZE, CHUNK_SIZE + 100):
        result = _agree(batch_db, row_db,
                        f"SELECT id FROM t LIMIT {limit}")
        assert len(result.rows) == limit
    # LIMIT above a sort still returns exact-order-identical prefixes.
    result = _agree(batch_db, row_db,
                    "SELECT id, v FROM t ORDER BY v DESC, id LIMIT 10")
    assert len(result.rows) == 10


def test_limit_hint_stops_early_in_both_engines():
    """With an ordered index the sort is elided and the limit hint stops
    the scan after limit+offset rows — the one early-exit in the engine,
    which must charge identical ``rows_touched`` under both engines."""
    n = CHUNK_SIZE + 400
    batch_db, row_db = _pair(n)
    for db in (batch_db, row_db):
        db.execute("CREATE INDEX idx_t_v ON t (v) USING ORDERED")
    for limit in (1, 700, CHUNK_SIZE + 100):
        result = _agree(batch_db, row_db,
                        f"SELECT id, v FROM t ORDER BY v LIMIT {limit}")
        assert len(result.rows) == limit
        # Early exit: far fewer rows touched than the full table.
        assert result.rows_touched <= limit + 1
    result = _agree(batch_db, row_db,
                    "SELECT id, v FROM t ORDER BY v LIMIT 50 OFFSET 25")
    assert len(result.rows) == 50
    assert result.rows_touched <= 76


def test_null_heavy_columns():
    batch_db, row_db = _pair(600)
    for sql, params in (
            ("SELECT id FROM t WHERE v > ?", (40,)),
            ("SELECT id FROM t WHERE v IS NULL", ()),
            ("SELECT id FROM t WHERE v IS NOT NULL AND v < ?", (30,)),
            ("SELECT id FROM t WHERE v BETWEEN ? AND ?", (10, 20)),
            ("SELECT id FROM t WHERE v IN (1, 2, NULL, 3)", ()),
            ("SELECT id FROM t WHERE NOT (v > ?)", (50,)),
            ("SELECT id, v FROM t ORDER BY v, id", ()),
            ("SELECT s, COUNT(v), SUM(v), MIN(v), MAX(v) FROM t "
             "GROUP BY s ORDER BY s", ()),
            ("SELECT DISTINCT v FROM t ORDER BY v", ()),
            ("SELECT id FROM t WHERE v = ? OR v IS NULL", (7,)),
    ):
        _agree(batch_db, row_db, sql, params)


def test_all_null_column():
    batch_db = Database(result_cache_size=0, engine="batch")
    row_db = Database(result_cache_size=0, engine="row")
    for db in (batch_db, row_db):
        db.execute("CREATE TABLE n (id INT PRIMARY KEY, v INT)")
        for i in range(50):
            db.execute("INSERT INTO n (id, v) VALUES (?, NULL)", (i,))
    assert _agree(batch_db, row_db,
                  "SELECT COUNT(v), SUM(v), AVG(v) FROM n").rows == \
        [(0, None, None)]
    assert _agree(batch_db, row_db,
                  "SELECT id FROM n WHERE v = v").rows == []


# ---------------------------------------------------------------------------
# Zero-copy scan safety
# ---------------------------------------------------------------------------


def test_zero_copy_scan_does_not_leak_mutable_storage_rows():
    """Single-table full-width scans hand storage rows straight to the
    operators (no ``_pad`` copy); results must still be immutable
    snapshots — a later UPDATE may not rewrite previously returned rows."""
    db = _seed(Database(result_cache_size=0, engine="batch"), 100)
    before = db.execute("SELECT id, v, s FROM t WHERE id < 10")
    snapshot = [tuple(r) for r in before.rows]
    db.execute("UPDATE t SET v = 999, s = 'mut' WHERE id < 10")
    assert [tuple(r) for r in before.rows] == snapshot
    after = db.execute("SELECT id, v, s FROM t WHERE id < 10")
    assert all(r[1] == 999 and r[2] == "mut" for r in after.rows)


def test_engines_agree_after_interleaved_writes():
    batch_db, row_db = _pair(300)
    for db in (batch_db, row_db):
        db.execute("UPDATE t SET v = v + 1 WHERE v > 50")
        db.execute("DELETE FROM t WHERE id % 7 = 0")
    _agree(batch_db, row_db, "SELECT id, v, s FROM t WHERE v >= ?", (40,))
    _agree(batch_db, row_db, "SELECT COUNT(*) FROM t")


# ---------------------------------------------------------------------------
# Observability: engine selection, counters, explain surfaces
# ---------------------------------------------------------------------------


def test_engine_validation():
    with pytest.raises(ValueError):
        Database(engine="columnar")


def test_engine_stats_counts_batches():
    batch_db, row_db = _pair(CHUNK_SIZE + 1)
    batch_db.execute("SELECT id FROM t WHERE v > 10")
    row_db.execute("SELECT id FROM t WHERE v > 10")
    stats = batch_db.engine_stats()
    assert stats["engine"] == "batch"
    assert stats["batches_executed"] > 0
    assert row_db.engine_stats() == {
        "engine": "row",
        "batches_executed": 0,
        "plans_built": row_db.executor.plans_built,
    }


def test_engine_flippable_between_statements():
    db = _seed(Database(result_cache_size=0, engine="batch"), 200)
    batch_rows = db.execute("SELECT id, v FROM t WHERE v > 5").rows
    flipped_at = db.executor.batches_executed
    assert flipped_at > 0
    db.engine = "row"
    row_rows = db.execute("SELECT id, v FROM t WHERE v > 5").rows
    assert row_rows == batch_rows
    # The cached plan served both paths; no batches under the row engine.
    assert db.executor.batches_executed == flipped_at


def test_explain_engine_trailer():
    db = _seed(Database(engine="batch"), 10)
    with_params = db.explain("SELECT id FROM t WHERE v > ?", params=(1,))
    assert "Engine [name='batch', batches_executed=" in with_params
    # The golden plain-explain surface is unchanged: no Engine line.
    plain = db.explain("SELECT id FROM t WHERE v > ?")
    assert "Engine [" not in plain
    db.engine = "row"
    assert "Engine [name='row'" in db.explain(
        "SELECT id FROM t WHERE v > ?", params=(1,))


def test_explain_analyze_shape():
    db = _seed(Database(result_cache_size=0, engine="batch"), 500)
    out = db.explain(
        "SELECT s, COUNT(*) FROM t WHERE v > ? GROUP BY s ORDER BY s",
        params=(10,), analyze=True)
    lines = out.splitlines()
    assert lines[0].startswith("EXPLAIN ANALYZE [engine=batch, rows=")
    assert "rows_touched=500" in lines[0]
    assert "total_ms=" in lines[0]
    body = "\n".join(lines[1:])
    assert "SeqScan(t) [rows=500, time=" in body
    assert "Filter [rows=" in body
    assert "Aggregate [rows=" in body
    # Deeper operators are indented further than their consumers.
    scan_line = next(l for l in lines if "SeqScan(t)" in l)
    filter_line = next(l for l in lines if "Filter [" in l)
    assert (len(scan_line) - len(scan_line.lstrip())
            > len(filter_line) - len(filter_line.lstrip()))


def test_explain_analyze_is_side_effect_light():
    db = _seed(Database(engine="batch"), 50)
    statements = db.statements_executed
    db.explain("SELECT id FROM t WHERE v > ?", params=(3,), analyze=True)
    assert db.statements_executed == statements
    # The analyze run did not populate the result cache.
    assert "status='miss'" in db.explain(
        "SELECT id FROM t WHERE v > ?", params=(3,))


def test_explain_analyze_rows_match_execution():
    batch_db, row_db = _pair(800)
    sql = "SELECT id, v FROM t WHERE v > ? ORDER BY v LIMIT 20"
    executed = _agree(batch_db, row_db, sql, (30,))
    out = batch_db.explain(sql, params=(30,), analyze=True)
    assert f"rows={len(executed.rows)}" in out.splitlines()[0]
    assert f"rows_touched={executed.rows_touched}" in out.splitlines()[0]
