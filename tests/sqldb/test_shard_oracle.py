"""Cross-topology sharding oracle.

Hypothesis generates a partition column, table data (with NULL partition
keys), and a routed query — partition-key point lookups and IN lists,
scatter reads with ORDER BY / LIMIT / OFFSET, joins against a broadcast
table, aggregates and DISTINCT (the gather path), and broadcast-table
reads — then executes it against a single-node :class:`Database` and
against :class:`ShardedDatabase` facades over 1, 2, and 4 shards under
both hash and range partitioning.

The oracle asserts:

- **byte-identical rows** across every topology (exact order for queries
  whose ORDER BY pins a total order; canonical multisets plus an
  order-contract check otherwise — LIMIT cases always order by a unique
  key, since tie-breaking under a cut is not a portable contract);
- **engine invariance** per topology: the sharded facade run under the
  batch engine and the row engine returns identical rows *and* identical
  ``rows_touched`` (each shard's execution is engine-invariant, so the
  sum across shards must be too);
- the same equivalences after a random interleaving of autocommit
  writes (inserts, partition-preserving updates, deletes).
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.sqldb import Database
from repro.sqldb.shard import HASH, RANGE, PartitionSpec, ShardTopology, \
    ShardedDatabase

# ---------------------------------------------------------------------------
# Topologies: (label, shard count, partition method)
# ---------------------------------------------------------------------------

TOPOLOGIES = [
    ("hash-1", 1, HASH),
    ("hash-2", 2, HASH),
    ("hash-4", 4, HASH),
    ("range-2", 2, RANGE),
    ("range-4", 4, RANGE),
]

#: Range split points per partition column, tuned to the generated value
#: domains (grp: 0..4 plus NULL, id: 0..~120).
_RANGE_BOUNDS = {
    "grp": {2: (2,), 4: (1, 2, 3)},
    "id": {2: (6,), 4: (3, 6, 9)},
}


def make_topology(shards, method, part_col):
    if method == RANGE and shards > 1:
        spec = PartitionSpec(part_col, RANGE, _RANGE_BOUNDS[part_col][shards])
    else:
        spec = PartitionSpec(part_col, HASH)
    return ShardTopology(shards, {"t": spec})


# ---------------------------------------------------------------------------
# Case generation
# ---------------------------------------------------------------------------

_GRP = st.one_of(st.none(), st.integers(min_value=0, max_value=4))
_VAL = st.integers(min_value=0, max_value=9)
_T_ROWS = st.lists(st.tuples(_GRP, _VAL), min_size=0, max_size=12)
_LK_ROWS = st.lists(_VAL, min_size=0, max_size=5)


@st.composite
def queries(draw):
    """(sql, params, order_positions, exact) — ``order_positions`` is the
    ORDER BY contract as output positions, ``exact`` means the topology
    comparison may demand identical row order (the ORDER BY pins a total
    order)."""
    shape = draw(st.sampled_from(
        ["point_grp", "pk", "in_list", "order_limit", "order_loose",
         "join", "agg", "distinct", "broadcast", "count_where"]))
    if shape == "point_grp":
        return ("SELECT id, grp, val FROM t WHERE grp = ? ORDER BY id",
                (draw(_GRP) or 0,), [(0, False)], True)
    if shape == "pk":
        return ("SELECT id, grp, val FROM t WHERE id = ?",
                (draw(st.integers(min_value=0, max_value=12)),), None, True)
    if shape == "in_list":
        a = draw(st.integers(min_value=0, max_value=4))
        b = draw(st.integers(min_value=0, max_value=4))
        return (f"SELECT id, grp, val FROM t WHERE grp IN ({a}, {b}) "
                "ORDER BY id", (), [(0, False)], True)
    if shape == "order_limit":
        col, pos = draw(st.sampled_from([("grp", 1), ("val", 2)]))
        desc = draw(st.booleans())
        d = "DESC" if desc else "ASC"
        limit = draw(st.integers(min_value=0, max_value=8))
        offset = draw(st.integers(min_value=0, max_value=4))
        tail = f" OFFSET {offset}" if draw(st.booleans()) else ""
        # The trailing unique key makes the cut deterministic.
        return (f"SELECT id, grp, val FROM t ORDER BY {col} {d}, id "
                f"LIMIT {limit}{tail}", (),
                [(pos, desc), (0, False)], True)
    if shape == "order_loose":
        desc = draw(st.booleans())
        return ("SELECT id, val FROM t ORDER BY val "
                + ("DESC" if desc else "ASC"), (), [(1, desc)], False)
    if shape == "join":
        kind = draw(st.sampled_from(["JOIN", "LEFT JOIN"]))
        where = ""
        if draw(st.booleans()):
            where = f" WHERE t.val >= {draw(_VAL)}"
        return (f"SELECT t.id, t.grp, lk.label FROM t {kind} lk "
                f"ON t.grp = lk.id{where} ORDER BY t.id", (),
                [(0, False)], True)
    if shape == "agg":
        return ("SELECT grp, COUNT(*), SUM(val) FROM t GROUP BY grp "
                "ORDER BY grp", (), [(0, False)], True)
    if shape == "distinct":
        return ("SELECT DISTINCT grp FROM t ORDER BY grp", (),
                [(0, False)], True)
    if shape == "broadcast":
        return ("SELECT id, label FROM lk WHERE id = ?",
                (draw(st.integers(min_value=0, max_value=4)),), None, True)
    return ("SELECT COUNT(*) FROM t WHERE val > ?", (draw(_VAL),),
            None, True)


@st.composite
def shard_cases(draw):
    part_col = draw(st.sampled_from(["grp", "id"]))
    t_rows = draw(_T_ROWS)
    lk_rows = draw(_LK_ROWS)
    query = draw(queries())
    return part_col, t_rows, lk_rows, query


_DDL = ("CREATE TABLE t (id INTEGER PRIMARY KEY, grp INT, val INT);"
        "CREATE TABLE lk (id INTEGER PRIMARY KEY, label INT);")


def seed(db, t_rows, lk_rows):
    db.execute_script(_DDL)
    for pk, (grp, val) in enumerate(t_rows):
        db.execute("INSERT INTO t (id, grp, val) VALUES (?, ?, ?)",
                   (pk, grp, val))
    for pk, label in enumerate(lk_rows):
        db.execute("INSERT INTO lk (id, label) VALUES (?, ?)", (pk, label))
    return db


def canon(rows):
    return sorted([tuple(row) for row in rows], key=repr)


def assert_ordered(rows, order_positions):
    """Adjacent pairs respect the ORDER BY keys with the engine's NULL
    placement (first ascending, last descending)."""
    def rank(row):
        key = []
        for pos, descending in order_positions:
            value = row[pos]
            if descending:
                key.append((value is None,
                            -value if value is not None else 0))
            else:
                key.append((value is not None,
                            value if value is not None else 0))
        return key

    ranks = [rank(row) for row in rows]
    assert all(a <= b for a, b in zip(ranks, ranks[1:]))


def _compare(reference, sharded, order_positions, exact):
    assert reference.columns == sharded.columns
    if exact:
        assert reference.rows == sharded.rows
    else:
        assert canon(reference.rows) == canon(sharded.rows)
        if order_positions:
            assert_ordered(sharded.rows, order_positions)


# ---------------------------------------------------------------------------
# The oracle
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("label,shards,method", TOPOLOGIES,
                         ids=[t[0] for t in TOPOLOGIES])
@given(case=shard_cases())
@settings(max_examples=200, deadline=None)
def test_cross_topology_oracle(label, shards, method, case):
    """Single-node == sharded for every routed query shape, and the
    sharded facade agrees with itself exactly across physical engines
    (rows and ``rows_touched``)."""
    part_col, t_rows, lk_rows, (sql, params, order_positions, exact) = case
    topology = make_topology(shards, method, part_col)
    reference = seed(Database("ref"), t_rows, lk_rows).execute(sql, params)

    batch = seed(ShardedDatabase(topology, engine="batch"),
                 t_rows, lk_rows).execute(sql, params)
    row = seed(ShardedDatabase(topology, engine="row"),
               t_rows, lk_rows).execute(sql, params)

    _compare(reference, batch, order_positions, exact)
    assert batch.rows == row.rows
    assert batch.columns == row.columns
    assert batch.rows_touched == row.rows_touched


_WRITE_OPS = st.lists(st.tuples(
    st.sampled_from(["insert", "update", "delete"]),
    _GRP, _VAL), min_size=0, max_size=6)


@pytest.mark.parametrize("label,shards,method", TOPOLOGIES,
                         ids=[t[0] for t in TOPOLOGIES])
@given(case=shard_cases(), ops=_WRITE_OPS)
@settings(max_examples=60, deadline=None)
def test_oracle_after_writes(label, shards, method, case, ops):
    """Interleaved autocommit writes (routed inserts, partition-
    preserving updates, deletes) keep every topology in agreement with
    the single-node reference."""
    part_col, t_rows, lk_rows, (sql, params, order_positions, exact) = case
    topology = make_topology(shards, method, part_col)
    databases = [seed(Database("ref"), t_rows, lk_rows),
                 seed(ShardedDatabase(topology), t_rows, lk_rows)]

    next_id = 100
    for op, grp, val in ops:
        if op == "insert":
            stmt = ("INSERT INTO t (id, grp, val) VALUES (?, ?, ?)",
                    (next_id, grp, val))
            next_id += 1
        elif op == "update":
            # Never touches the partition column (cross-shard moves are
            # rejected by the facade; that contract has its own test).
            stmt = ("UPDATE t SET val = ? WHERE val = ?", (val, (val + 1) % 10))
        else:
            stmt = ("DELETE FROM t WHERE val = ?", (val,))
        for db in databases:
            db.execute(*stmt)

    reference, sharded = (db.execute(sql, params) for db in databases)
    _compare(reference, sharded, order_positions, exact)

    full = "SELECT id, grp, val FROM t ORDER BY id"
    assert databases[0].query(full) == databases[1].query(full)
