"""Integration tests over the benchmark applications."""

import pytest

from repro.apps import itracker, openmrs, tpcc, tpcw
from repro.bench.harness import compare_pages, load_page
from repro.net.clock import CostModel
from repro.web.appserver import MODE_ORIGINAL, MODE_SLOTH


class TestItracker:
    def test_benchmark_count_matches_paper(self):
        assert len(itracker.BENCHMARK_URLS) == 38

    def test_every_page_loads_in_both_modes(self, itracker_app):
        db, dispatcher = itracker_app
        cm = CostModel()
        for url in itracker.BENCHMARK_URLS:
            orig = load_page(db, dispatcher, url, cm, MODE_ORIGINAL)
            sloth = load_page(db, dispatcher, url, cm, MODE_SLOTH)
            assert orig.time_ms > 0 and sloth.time_ms > 0
            assert sloth.round_trips < orig.round_trips, url

    def test_sloth_and_original_render_same_dynamic_content(
            self, itracker_app):
        db, dispatcher = itracker_app
        cm = CostModel()
        url = "module-projects/view_issue.jsp"
        orig = load_page(db, dispatcher, url, cm, MODE_ORIGINAL,
                         params={"id": "7"})
        sloth = load_page(db, dispatcher, url, cm, MODE_SLOTH,
                          params={"id": "7"})
        assert orig.html == sloth.html

    def test_view_issue_batches(self, itracker_app):
        db, dispatcher = itracker_app
        sloth = load_page(db, dispatcher,
                          "module-projects/view_issue.jsp", CostModel(),
                          MODE_SLOTH)
        assert sloth.largest_batch >= 3


class TestOpenmrs:
    def test_benchmark_count_matches_paper(self):
        assert len(openmrs.BENCHMARK_URLS) == 112

    def test_all_pages_render_identically(self, openmrs_app):
        db, dispatcher = openmrs_app
        cm = CostModel()
        for url in openmrs.BENCHMARK_URLS[:20]:
            orig = load_page(db, dispatcher, url, cm, MODE_ORIGINAL)
            sloth = load_page(db, dispatcher, url, cm, MODE_SLOTH)
            assert orig.html == sloth.html, url

    def test_encounter_display_matches_paper_pattern(self, openmrs_app):
        """The §6.1 example: ~50 concept fetches collapse into batches."""
        db, dispatcher = openmrs_app
        cm = CostModel()
        url = "encounters/encounterDisplay.jsp"
        orig = load_page(db, dispatcher, url, cm, MODE_ORIGINAL)
        sloth = load_page(db, dispatcher, url, cm, MODE_SLOTH)
        assert orig.round_trips > 50  # 1+N in the original
        assert sloth.round_trips < orig.round_trips / 5
        assert sloth.largest_batch >= 30
        assert sloth.time_ms < orig.time_ms

    def test_some_pages_issue_more_queries_under_sloth(self, openmrs_app):
        db, dispatcher = openmrs_app
        comparisons = compare_pages(db, dispatcher,
                                    openmrs.BENCHMARK_URLS)
        ratios = [c.queries_ratio for c in comparisons]
        assert any(r < 1.0 for r in ratios)  # paper §6.1
        assert any(r > 1.0 for r in ratios)


class TestTpcc:
    @pytest.fixture(scope="class")
    def runner(self, sim_stack_factory=None):
        from repro.apps.tpcc.transactions import OriginalClient
        from repro.net.clock import CostModel, SimClock
        from repro.net.driver import Driver
        from repro.net.server import DatabaseServer
        from repro.sqldb import Database

        db = Database()
        tpcc.seed(db)
        cm = CostModel()
        clock = SimClock()
        driver = Driver(DatabaseServer(db, cm), clock, cm)
        return tpcc.TpccRunner(OriginalClient(driver, clock, cm)), db

    def test_all_transaction_types_commit(self, runner):
        tpcc_runner, db = runner
        for kind in tpcc.TRANSACTION_TYPES:
            tpcc_runner.run(kind, 1)
        assert tpcc_runner.committed == 5

    def test_new_order_inserts_rows(self, runner):
        tpcc_runner, db = runner
        before = db.table_size("orders")
        tpcc_runner.run("new_order", 7)
        assert db.table_size("orders") == before + 1

    def test_payment_updates_balances(self, runner):
        tpcc_runner, db = runner
        before = db.query("SELECT SUM(w_ytd) AS s FROM warehouse")[0]["s"]
        tpcc_runner.run("payment", 3)
        after = db.query("SELECT SUM(w_ytd) AS s FROM warehouse")[0]["s"]
        assert after > before

    def test_delivery_consumes_new_orders(self, runner):
        tpcc_runner, db = runner
        before = db.table_size("new_order")
        tpcc_runner.run("delivery", 0)
        assert db.table_size("new_order") < before


class TestTpcw:
    def test_mixes_run_and_mutate(self):
        from repro.apps.tpcc.transactions import OriginalClient
        from repro.net.clock import CostModel, SimClock
        from repro.net.driver import Driver
        from repro.net.server import DatabaseServer
        from repro.sqldb import Database

        db = Database()
        tpcw.seed(db)
        cm = CostModel()
        clock = SimClock()
        driver = Driver(DatabaseServer(db, cm), clock, cm)
        runner = tpcw.TpcwRunner(OriginalClient(driver, clock, cm))
        for mix in tpcw.MIXES:
            runner.run_mix(mix, 30)
        assert runner.interactions == 90
        # the ordering mix creates carts and orders
        assert db.table_size("cart_line") > 0 or db.table_size("tw_order") > 0
