import pytest

from repro.core.thunk import (
    LiteralThunk, Thunk, ThunkBlock, force, force_deep, is_thunk,
)


def test_thunk_defers_and_memoizes():
    calls = []
    t = Thunk(lambda: calls.append(1) or 42)
    assert not t.is_forced
    assert not calls
    assert t.force() == 42
    assert t.force() == 42
    assert calls == [1]


def test_underscore_force_alias():
    t = Thunk(lambda: 7)
    assert t._force() == 7


def test_chained_thunks_collapse():
    inner = Thunk(lambda: 5)
    outer = Thunk(lambda: inner)
    assert outer.force() == 5


def test_literal_thunk():
    t = LiteralThunk("x")
    assert t.is_forced
    assert t.force() == "x"


def test_force_passthrough_for_plain_values():
    assert force(3) == 3
    assert force(None) is None


def test_is_thunk():
    assert is_thunk(Thunk(lambda: 1))
    assert is_thunk(LiteralThunk(1))
    assert not is_thunk(42)


def test_thunk_block_runs_once_for_all_outputs():
    calls = []

    def body():
        calls.append(1)
        return {"a": 1, "b": Thunk(lambda: 2)}

    block = ThunkBlock(body)
    a = block.output("a")
    b = block.output("b")
    assert b.force() == 2  # nested thunk output is collapsed
    assert a.force() == 1
    assert calls == [1]


def test_thunk_block_requires_dict():
    block = ThunkBlock(lambda: [1, 2])
    with pytest.raises(TypeError):
        block.force_block()


def test_force_deep_containers():
    value = [Thunk(lambda: 1), (Thunk(lambda: 2),),
             {"k": Thunk(lambda: 3)}, {4}]
    assert force_deep(value) == [1, (2,), {"k": 3}, {4}]


def test_force_deep_nested_containers():
    value = {
        "list": [Thunk(lambda: [Thunk(lambda: 1)])],
        "tuple": (Thunk(lambda: (Thunk(lambda: 2), 3)),),
        "set": Thunk(lambda: {4, 5}),
    }
    resolved = force_deep(value)
    assert resolved == {"list": [[1]], "tuple": ((2, 3),), "set": {4, 5}}
    # Every container is rebuilt as a plain container of plain values.
    assert type(resolved["tuple"][0]) is tuple


def test_force_deep_forces_dict_keys():
    value = {Thunk(lambda: "k"): Thunk(lambda: "v")}
    assert force_deep(value) == {"k": "v"}


def test_thunk_block_non_dict_variants():
    for bad_body in (lambda: [1, 2], lambda: None, lambda: 42,
                     lambda: (("a", 1),)):
        block = ThunkBlock(bad_body)
        with pytest.raises(TypeError):
            block.force_block()


def test_thunk_block_failed_body_can_retry():
    calls = []

    def body():
        calls.append(1)
        raise TypeError("boom")

    block = ThunkBlock(body)
    with pytest.raises(TypeError):
        block.force_block()
    assert not block.is_forced  # a failed body does not poison the block
    with pytest.raises(TypeError):
        block.force_block()
    assert calls == [1, 1]


def test_thunk_block_forced_once_across_many_outputs_and_forces():
    calls = []

    def body():
        calls.append(1)
        return {"a": 1, "b": 2, "c": Thunk(lambda: 3)}

    block = ThunkBlock(body)
    outputs = [block.output(name) for name in ("a", "b", "c", "a")]
    assert [t.force() for t in outputs] == [1, 2, 3, 1]
    assert [t.force() for t in outputs] == [1, 2, 3, 1]  # memoized
    assert calls == [1]


def test_thunk_block_unknown_output_raises_keyerror():
    block = ThunkBlock(lambda: {"a": 1})
    with pytest.raises(KeyError):
        block.output("missing").force()


def test_runtime_accounting(sim_stack):
    from repro.core.runtime import SlothRuntime

    db, clock, server, driver, batch_driver = sim_stack
    runtime = SlothRuntime(batch_driver, clock, server.cost_model)
    before = clock.phase_time("app")
    t = runtime.defer(lambda: 1)
    assert clock.phase_time("app") > before
    assert runtime.stats.thunks_allocated == 1
    t.force()
    assert runtime.stats.forces == 1
