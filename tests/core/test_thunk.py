import pytest

from repro.core.thunk import (
    LiteralThunk, Thunk, ThunkBlock, force, force_deep, is_thunk,
)


def test_thunk_defers_and_memoizes():
    calls = []
    t = Thunk(lambda: calls.append(1) or 42)
    assert not t.is_forced
    assert not calls
    assert t.force() == 42
    assert t.force() == 42
    assert calls == [1]


def test_underscore_force_alias():
    t = Thunk(lambda: 7)
    assert t._force() == 7


def test_chained_thunks_collapse():
    inner = Thunk(lambda: 5)
    outer = Thunk(lambda: inner)
    assert outer.force() == 5


def test_literal_thunk():
    t = LiteralThunk("x")
    assert t.is_forced
    assert t.force() == "x"


def test_force_passthrough_for_plain_values():
    assert force(3) == 3
    assert force(None) is None


def test_is_thunk():
    assert is_thunk(Thunk(lambda: 1))
    assert is_thunk(LiteralThunk(1))
    assert not is_thunk(42)


def test_thunk_block_runs_once_for_all_outputs():
    calls = []

    def body():
        calls.append(1)
        return {"a": 1, "b": Thunk(lambda: 2)}

    block = ThunkBlock(body)
    a = block.output("a")
    b = block.output("b")
    assert b.force() == 2  # nested thunk output is collapsed
    assert a.force() == 1
    assert calls == [1]


def test_thunk_block_requires_dict():
    block = ThunkBlock(lambda: [1, 2])
    with pytest.raises(TypeError):
        block.force_block()


def test_force_deep_containers():
    value = [Thunk(lambda: 1), (Thunk(lambda: 2),),
             {"k": Thunk(lambda: 3)}, {4}]
    assert force_deep(value) == [1, (2,), {"k": 3}, {4}]


def test_runtime_accounting(sim_stack):
    from repro.core.runtime import SlothRuntime

    db, clock, server, driver, batch_driver = sim_stack
    runtime = SlothRuntime(batch_driver, clock, server.cost_model)
    before = clock.phase_time("app")
    t = runtime.defer(lambda: 1)
    assert clock.phase_time("app") > before
    assert runtime.stats.thunks_allocated == 1
    t.force()
    assert runtime.stats.forces == 1
