"""Write/read ordering under asynchronous batch dispatch.

A seeded interleaved oracle: random schedules of reads, writes, app work
and forces run through an async query store at pipeline depths 1, 2 and 4.
The appendix's [Write query] rule must hold on the data no matter how the
dispatch overlaps — every read *registered* before a write observes the
pre-write value, every read registered after observes the post-write value
— and a write must never issue while an async batch is still in flight.
"""

import random

import pytest

from repro.core.query_store import QueryStore
from repro.net.clock import CostModel, SimClock
from repro.net.driver import BatchDriver
from repro.net.server import DatabaseServer
from repro.sqldb import Database

ROWS = 8
TRIALS = 12
STEPS = 40
SEED = 20140622  # SIGMOD'14


def _build_stack():
    db = Database()
    db.execute("CREATE TABLE kv (id INT PRIMARY KEY, v INT)")
    for i in range(ROWS):
        db.execute("INSERT INTO kv (id, v) VALUES (?, ?)", (i, 0))
    # The oracle checks execution-order semantics; the cross-request cache
    # would serve some reads without executing (same rows, but keep the
    # trial about the dispatch path itself).
    db.result_cache.enabled = False
    clock = SimClock()
    cost_model = CostModel()
    driver = BatchDriver(DatabaseServer(db, cost_model), clock, cost_model)
    return db, clock, driver


@pytest.mark.parametrize("depth", [1, 2, 4])
def test_interleaved_write_read_oracle(depth):
    rng = random.Random(SEED + depth)
    for trial in range(TRIALS):
        db, clock, driver = _build_stack()
        store = QueryStore(driver, auto_flush_threshold=3,
                           async_dispatch=True, pipeline_depth=depth)
        model = [0] * ROWS         # current value per row (program order)
        expected = {}              # QueryId -> value at registration time
        unread = []                # ids not yet forced

        for step in range(STEPS):
            action = rng.random()
            row = rng.randrange(ROWS)
            if action < 0.45:
                query_id = store.register_query(
                    "SELECT v FROM kv WHERE id = ?", (row,))
                # Dedup may return an id registered earlier in the same
                # pending window; no write can have intervened (writes
                # flush), so the expected value is unchanged.
                if query_id not in expected:
                    unread.append(query_id)
                expected[query_id] = model[row]
            elif action < 0.65:
                new_value = trial * 1000 + step
                store.register_query(
                    "UPDATE kv SET v = ? WHERE id = ?", (new_value, row))
                model[row] = new_value
                # [Write query] barrier: nothing may still be in flight
                # once a write has issued.
                assert store.in_flight_count == 0
            elif action < 0.85:
                # Concurrent app progress: this is what async dispatch
                # overlaps with the in-flight round trips.
                clock.charge("app", rng.random())
            elif unread:
                query_id = unread.pop(rng.randrange(len(unread)))
                assert store.get_result_set(query_id).scalar() == \
                    expected[query_id]

        for query_id in unread:
            assert store.get_result_set(query_id).scalar() == \
                expected[query_id]
        store.drain()
        assert store.in_flight_count == 0
        # Sanity: overlap accounting never exceeds what was dispatched,
        # and the serial timeline's phase totals still sum to now.
        assert sum(clock.breakdown().values()) == pytest.approx(clock.now)


@pytest.mark.parametrize("depth", [1, 2, 4])
def test_reads_straddling_a_write(depth):
    """The minimal straddle: read, write, read on one row."""
    db, clock, driver = _build_stack()
    store = QueryStore(driver, auto_flush_threshold=10,
                       async_dispatch=True, pipeline_depth=depth)
    before = store.register_query("SELECT v FROM kv WHERE id = ?", (3,))
    store.register_query("UPDATE kv SET v = 42 WHERE id = ?", (3,))
    after = store.register_query("SELECT v FROM kv WHERE id = ?", (3,))
    assert store.get_result_set(before).scalar() == 0
    assert store.get_result_set(after).scalar() == 42
