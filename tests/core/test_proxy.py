from repro.core.proxy import LazyProxy, lazy, unwrap
from repro.core.thunk import Thunk


def test_proxy_defers_until_used():
    calls = []

    def compute():
        calls.append(1)
        return 10

    p = lazy(compute)
    assert not calls
    assert p + 5 == 15
    assert calls == [1]


def test_proxy_arithmetic_and_comparison():
    p = lazy(lambda: 6)
    assert p * 7 == 42
    assert 7 * p == 42
    assert p - 1 == 5
    assert 10 - p == 4
    assert p / 2 == 3
    assert -p == -6
    assert abs(lazy(lambda: -3)) == 3
    assert p < 7 and p > 5 and p <= 6 and p >= 6
    assert p == 6 and p != 5


def test_proxy_comparison_with_other_proxy():
    assert lazy(lambda: 3) < lazy(lambda: 4)


def test_proxy_string_behaviour():
    p = lazy(lambda: "hello")
    assert str(p) == "hello"
    assert format(p, ">7") == "  hello"
    assert len(p) == 5
    assert "ell" in p


def test_proxy_container_protocol():
    p = lazy(lambda: [1, 2, 3])
    assert list(p) == [1, 2, 3]
    assert p[0] == 1
    p[0] = 9
    assert p[0] == 9
    del p[0]
    assert len(p) == 2


def test_proxy_attribute_access():
    class Obj:
        value = 13

    p = lazy(lambda: Obj())
    assert p.value == 13
    p.value = 14
    assert p.value == 14


def test_proxy_bool_and_hash():
    assert bool(lazy(lambda: []))is False
    assert hash(lazy(lambda: "k")) == hash("k")


def test_proxy_call():
    p = lazy(lambda: (lambda x: x * 2))
    assert p(21) == 42


def test_unwrap():
    assert unwrap(lazy(lambda: 5)) == 5
    assert unwrap(Thunk(lambda: 6)) == 6
    assert unwrap(7) == 7


def test_proxy_forces_once():
    calls = []
    p = LazyProxy(Thunk(lambda: calls.append(1) or {"a": 1}))
    assert p["a"] == 1
    assert p["a"] == 1
    assert calls == [1]
