import pytest

from repro.core.query_store import QueryStore


@pytest.fixture
def store(sim_stack):
    db, clock, server, driver, batch_driver = sim_stack
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    for i in range(5):
        db.execute("INSERT INTO t (id, v) VALUES (?, ?)", (i, i * 10))
    return QueryStore(batch_driver), batch_driver


def test_register_does_not_execute(store):
    qs, driver = store
    qs.register_query("SELECT v FROM t WHERE id = ?", (1,))
    assert driver.stats.round_trips == 0
    assert qs.pending_count == 1


def test_get_result_flushes_whole_batch(store):
    qs, driver = store
    id1 = qs.register_query("SELECT v FROM t WHERE id = ?", (1,))
    id2 = qs.register_query("SELECT v FROM t WHERE id = ?", (2,))
    result = qs.get_result_set(id1)
    assert result.scalar() == 10
    assert driver.stats.round_trips == 1
    # Second result is already cached: no extra round trip.
    assert qs.get_result_set(id2).scalar() == 20
    assert driver.stats.round_trips == 1


def test_duplicate_pending_query_dedups(store):
    qs, _ = store
    id1 = qs.register_query("SELECT v FROM t WHERE id = ?", (3,))
    id2 = qs.register_query("SELECT v FROM t WHERE id = ?", (3,))
    assert id1 == id2
    assert qs.stats.dedup_hits == 1
    assert qs.pending_count == 1


def test_different_params_are_not_duplicates(store):
    qs, _ = store
    id1 = qs.register_query("SELECT v FROM t WHERE id = ?", (3,))
    id2 = qs.register_query("SELECT v FROM t WHERE id = ?", (4,))
    assert id1 != id2


def test_write_flushes_immediately_preserving_order(store):
    qs, driver = store
    read_id = qs.register_query("SELECT v FROM t WHERE id = ?", (1,))
    qs.register_query("UPDATE t SET v = 999 WHERE id = 1")
    # One batch carried the read and the write together.
    assert driver.stats.round_trips == 1
    assert driver.stats.largest_batch == 2
    # The read observed the pre-write value.
    assert qs.get_result_set(read_id).scalar() == 10


def test_unknown_id_raises(store):
    qs, _ = store
    from repro.core.query_store import QueryId

    with pytest.raises(KeyError):
        qs.get_result_set(QueryId(qs, 999_999))


class TestQueryIdScoping:
    """Ids are per-store: no mutable class-level counter leaking across
    stores or benchmark runs."""

    def test_counters_are_independent_across_stores(self, sim_stack):
        db, clock, server, driver, batch_driver = sim_stack
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        a = QueryStore(batch_driver)
        b = QueryStore(batch_driver)
        id_a = a.register_query("SELECT v FROM t WHERE id = 1")
        id_b = b.register_query("SELECT v FROM t WHERE id = 1")
        assert id_a.value == 1
        assert id_b.value == 1

    def test_same_value_different_store_not_equal(self, sim_stack):
        db, clock, server, driver, batch_driver = sim_stack
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        a = QueryStore(batch_driver)
        b = QueryStore(batch_driver)
        id_a = a.register_query("SELECT v FROM t WHERE id = 1")
        id_b = b.register_query("SELECT v FROM t WHERE id = 1")
        assert id_a != id_b
        assert hash(id_a) != hash(id_b)

    def test_equal_ids_hash_equal(self, sim_stack):
        db, clock, server, driver, batch_driver = sim_stack
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        qs = QueryStore(batch_driver)
        qid = qs.register_query("SELECT v FROM t WHERE id = 1")
        twin = qs.register_query("SELECT v FROM t WHERE id = 1")
        assert qid == twin and hash(qid) == hash(twin)


def test_flush_noop_when_empty(store):
    qs, driver = store
    qs.flush()
    assert driver.stats.round_trips == 0


def test_batch_size_tracking(store):
    qs, _ = store
    ids = [qs.register_query("SELECT v FROM t WHERE id = ?", (i,))
           for i in range(4)]
    qs.get_result_set(ids[0])
    assert qs.stats.largest_batch == 4
    assert qs.stats.batches_flushed == 1
    assert qs.stats.queries_issued == 4


class TestResultStoreBounded:
    """Issued results must not accumulate forever (the old leak)."""

    def _seeded_store(self, sim_stack, **kwargs):
        db, clock, server, driver, batch_driver = sim_stack
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for i in range(20):
            db.execute("INSERT INTO t (id, v) VALUES (?, ?)", (i, i))
        return QueryStore(batch_driver, **kwargs)

    def test_flush_boundary_evicts_delivered_results(self, sim_stack):
        qs = self._seeded_store(sim_stack)
        ids = [qs.register_query("SELECT v FROM t WHERE id = ?", (i,))
               for i in range(5)]
        for query_id in ids:
            qs.get_result_set(query_id)
        assert qs.result_store_size == 5
        qs.flush()  # request boundary
        assert qs.result_store_size == 0
        assert qs.stats.results_evicted == 5

    def test_undelivered_results_survive_the_boundary(self, sim_stack):
        qs = self._seeded_store(sim_stack)
        fetched = qs.register_query("SELECT v FROM t WHERE id = ?", (1,))
        kept = qs.register_query("SELECT v FROM t WHERE id = ?", (2,))
        qs.get_result_set(fetched)
        qs.flush()
        # The never-delivered result is still servable after the boundary.
        assert qs.get_result_set(kept).scalar() == 2
        assert qs.result_store_size == 1

    def test_dedup_shared_id_survives_boundary_until_both_fetch(
            self, sim_stack):
        qs = self._seeded_store(sim_stack)
        first = qs.register_query("SELECT v FROM t WHERE id = ?", (7,))
        twin = qs.register_query("SELECT v FROM t WHERE id = ?", (7,))
        assert first == twin
        qs.get_result_set(first)
        qs.flush()  # a mid-request flush (e.g. branch-deferral off)
        # The twin registration still owes a fetch: not evicted.
        assert qs.get_result_set(twin).scalar() == 7
        qs.flush()
        assert qs.result_store_size == 0

    def test_long_lived_store_stays_bounded_by_lru(self, sim_stack):
        qs = self._seeded_store(sim_stack, result_store_limit=8)
        # A long-lived store that never hits a request boundary: fetch
        # many results without ever calling flush().
        for _ in range(10):
            for i in range(4):
                # Each loop registers afresh (dedup only spans one pending
                # window) and forces immediately: 40 issued results.
                query_id = qs.register_query(
                    "SELECT v FROM t WHERE id = ?", (i,))
                qs.get_result_set(query_id)
        assert qs.result_store_size <= 8
        assert qs.stats.results_evicted > 0

    def test_lru_prefers_delivered_over_undelivered(self, sim_stack):
        qs = self._seeded_store(sim_stack, result_store_limit=2,
                                auto_flush_threshold=1)
        pending = qs.register_query("SELECT v FROM t WHERE id = ?", (0,))
        for i in range(1, 8):
            query_id = qs.register_query(
                "SELECT v FROM t WHERE id = ?", (i,))
            qs.get_result_set(query_id)
        # Delivered entries absorbed the evictions; the issued-but-unforced
        # result is still servable.
        assert qs.get_result_set(pending).scalar() == 0

    def test_per_request_refs_survive_other_requests_drain(self, sim_stack):
        # A dedup-shared id spanning two requests that reach their
        # boundaries at different times: request A registering, fetching
        # and draining must not evict the result request B still owes a
        # fetch for.  Holder counts are per-request, not a global int.
        qs = self._seeded_store(sim_stack)
        token_a = qs.begin_request()
        a_id = qs.register_query("SELECT v FROM t WHERE id = ?", (7,))
        qs.begin_request()
        b_id = qs.register_query("SELECT v FROM t WHERE id = ?", (7,))
        assert a_id == b_id  # dedup across the shared pending buffer
        qs.get_result_set(b_id)  # request B is active: fetches first
        # Request B over-fetches; with a global count this would consume
        # request A's hold and the boundary below would evict.
        qs.get_result_set(b_id)
        qs.flush()  # request B's boundary
        assert qs.result_store_size == 1  # request A still owes a fetch
        qs.enter_request(token_a)
        assert qs.get_result_set(a_id).scalar() == 7
        qs.flush()  # request A's boundary
        assert qs.result_store_size == 0

    def test_over_fetch_does_not_strand_results(self, sim_stack):
        # Clamping at zero must not leak: an id fetched more times than
        # registered is still evicted at the boundary.
        qs = self._seeded_store(sim_stack)
        query_id = qs.register_query("SELECT v FROM t WHERE id = ?", (3,))
        for _ in range(3):
            assert qs.get_result_set(query_id).scalar() == 3
        qs.flush()
        assert qs.result_store_size == 0

    def test_limit_is_hard_even_for_never_forced_results(self, sim_stack):
        # A long-lived auto-flushing store whose thunks are never forced
        # must still stay bounded: the backstop falls back to evicting the
        # oldest issued entries outright.
        qs = self._seeded_store(sim_stack, result_store_limit=8,
                                auto_flush_threshold=1)
        for i in range(20):
            qs.register_query("SELECT v FROM t WHERE id = ?", (i % 20,))
        assert qs.result_store_size <= 8
        assert qs.stats.results_evicted >= 12


class TestAsyncDispatch:
    """§6.7: background flushes, residual stalls, write barriers."""

    def _stack(self, sim_stack, rows=10, **kwargs):
        db, clock, server, driver, batch_driver = sim_stack
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for i in range(rows):
            db.execute("INSERT INTO t (id, v) VALUES (?, ?)", (i, i * 10))
        kwargs.setdefault("auto_flush_threshold", 2)
        kwargs.setdefault("async_dispatch", True)
        return QueryStore(batch_driver, **kwargs), batch_driver, clock

    def test_threshold_flush_ships_in_background(self, sim_stack):
        qs, driver, clock = self._stack(sim_stack)
        qs.register_query("SELECT v FROM t WHERE id = ?", (0,))
        qs.register_query("SELECT v FROM t WHERE id = ?", (1,))
        # Dispatched (a round trip is in flight) but nothing stalled: no
        # network or db time on the serial timeline yet.
        assert driver.stats.round_trips == 1
        assert qs.in_flight_count == 1
        assert clock.phase_time("network") == 0.0
        assert clock.phase_time("db") == 0.0

    def test_force_waits_only_residual(self, sim_stack):
        qs, driver, clock = self._stack(sim_stack)
        ids = [qs.register_query("SELECT v FROM t WHERE id = ?", (i,))
               for i in range(2)]
        completion = qs._in_flight[0]
        clock.charge("app", completion.in_flight_ms / 2)
        assert qs.get_result_set(ids[0]).scalar() == 0
        assert qs.in_flight_count == 0
        assert qs.stats.stall_ms == pytest.approx(
            completion.in_flight_ms / 2)
        assert qs.stats.overlap_ms == pytest.approx(
            completion.in_flight_ms / 2)
        # The second member of the batch is already there: no extra wait.
        stall_before = qs.stats.stall_ms
        assert qs.get_result_set(ids[1]).scalar() == 10
        assert qs.stats.stall_ms == stall_before

    def test_fully_overlapped_batch_stalls_nothing(self, sim_stack):
        qs, driver, clock = self._stack(sim_stack)
        ids = [qs.register_query("SELECT v FROM t WHERE id = ?", (i,))
               for i in range(2)]
        clock.charge("app", 1e6)  # plenty of concurrent app progress
        qs.get_result_set(ids[0])
        assert qs.stats.stall_ms == 0.0
        assert qs.stats.overlap_ms > 0.0
        assert clock.phase_time("network") == 0.0

    def test_pipeline_depth_bounds_in_flight(self, sim_stack):
        qs, driver, clock = self._stack(sim_stack, pipeline_depth=2)
        for i in range(8):  # 4 threshold flushes of 2
            qs.register_query("SELECT v FROM t WHERE id = ?", (i,))
        # Never more than 2 in flight: older batches were awaited to make
        # room (their stall shows up in the stats).
        assert qs.in_flight_count <= 2
        assert driver.stats.async_batches == 4
        assert qs.stats.stall_ms > 0

    def test_write_barriers_on_in_flight_batches(self, sim_stack):
        qs, driver, clock = self._stack(sim_stack)
        read_id = qs.register_query("SELECT v FROM t WHERE id = ?", (1,))
        qs.register_query("SELECT v FROM t WHERE id = ?", (2,))
        assert qs.in_flight_count == 1
        qs.register_query("UPDATE t SET v = 999 WHERE id = 1")
        # The write landed every in-flight batch before issuing, and the
        # write batch itself ran synchronously.
        assert qs.in_flight_count == 0
        # The read registered before the write observed pre-write data.
        assert qs.get_result_set(read_id).scalar() == 10

    def test_drain_lands_everything(self, sim_stack):
        qs, driver, clock = self._stack(sim_stack)
        ids = [qs.register_query("SELECT v FROM t WHERE id = ?", (i,))
               for i in range(4)]
        assert qs.in_flight_count > 0
        qs.drain()
        assert qs.in_flight_count == 0
        # Drain does not issue the pending buffer...
        qs.register_query("SELECT v FROM t WHERE id = ?", (9,))
        pending_before = qs.pending_count
        qs.drain()
        assert qs.pending_count == pending_before

    def test_async_results_identical_to_sync(self, sim_stack):
        db, clock, server, driver, batch_driver = sim_stack
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for i in range(10):
            db.execute("INSERT INTO t (id, v) VALUES (?, ?)", (i, i * 10))
        db.result_cache.enabled = False

        def run(async_dispatch):
            qs = QueryStore(batch_driver, auto_flush_threshold=3,
                            async_dispatch=async_dispatch)
            ids = [qs.register_query("SELECT v FROM t WHERE id = ?", (i,))
                   for i in range(10)]
            return [tuple(qs.get_result_set(q).rows) for q in ids]

        assert run(False) == run(True)

    def test_invalid_pipeline_depth_rejected(self, sim_stack):
        db, clock, server, driver, batch_driver = sim_stack
        with pytest.raises(ValueError):
            QueryStore(batch_driver, pipeline_depth=0)


class TestAutoFlushStrategy:
    """§6.7's alternative execution strategy: flush at a size threshold."""

    def test_flushes_when_threshold_reached(self, sim_stack):
        from repro.core.query_store import QueryStore

        db, clock, server, driver, batch_driver = sim_stack
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for i in range(6):
            db.execute("INSERT INTO t (id, v) VALUES (?, ?)", (i, i))
        qs = QueryStore(batch_driver, auto_flush_threshold=3)
        ids = [qs.register_query("SELECT v FROM t WHERE id = ?", (i,))
               for i in range(5)]
        # The first three shipped automatically; two still pend.
        assert batch_driver.stats.round_trips == 1
        assert qs.pending_count == 2
        # Already-flushed results are served from the cache.
        assert qs.get_result_set(ids[0]).scalar() == 0
        assert batch_driver.stats.round_trips == 1
        # Forcing a pending one flushes the remainder.
        assert qs.get_result_set(ids[4]).scalar() == 4
        assert batch_driver.stats.round_trips == 2

    def test_threshold_none_keeps_default_behaviour(self, sim_stack):
        from repro.core.query_store import QueryStore

        db, clock, server, driver, batch_driver = sim_stack
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        qs = QueryStore(batch_driver)
        for i in range(10):
            qs.register_query("SELECT v FROM t WHERE id = ?", (i,))
        assert batch_driver.stats.round_trips == 0
        assert qs.pending_count == 10
