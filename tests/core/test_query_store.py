import pytest

from repro.core.query_store import QueryStore


@pytest.fixture
def store(sim_stack):
    db, clock, server, driver, batch_driver = sim_stack
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    for i in range(5):
        db.execute("INSERT INTO t (id, v) VALUES (?, ?)", (i, i * 10))
    return QueryStore(batch_driver), batch_driver


def test_register_does_not_execute(store):
    qs, driver = store
    qs.register_query("SELECT v FROM t WHERE id = ?", (1,))
    assert driver.stats.round_trips == 0
    assert qs.pending_count == 1


def test_get_result_flushes_whole_batch(store):
    qs, driver = store
    id1 = qs.register_query("SELECT v FROM t WHERE id = ?", (1,))
    id2 = qs.register_query("SELECT v FROM t WHERE id = ?", (2,))
    result = qs.get_result_set(id1)
    assert result.scalar() == 10
    assert driver.stats.round_trips == 1
    # Second result is already cached: no extra round trip.
    assert qs.get_result_set(id2).scalar() == 20
    assert driver.stats.round_trips == 1


def test_duplicate_pending_query_dedups(store):
    qs, _ = store
    id1 = qs.register_query("SELECT v FROM t WHERE id = ?", (3,))
    id2 = qs.register_query("SELECT v FROM t WHERE id = ?", (3,))
    assert id1 == id2
    assert qs.stats.dedup_hits == 1
    assert qs.pending_count == 1


def test_different_params_are_not_duplicates(store):
    qs, _ = store
    id1 = qs.register_query("SELECT v FROM t WHERE id = ?", (3,))
    id2 = qs.register_query("SELECT v FROM t WHERE id = ?", (4,))
    assert id1 != id2


def test_write_flushes_immediately_preserving_order(store):
    qs, driver = store
    read_id = qs.register_query("SELECT v FROM t WHERE id = ?", (1,))
    qs.register_query("UPDATE t SET v = 999 WHERE id = 1")
    # One batch carried the read and the write together.
    assert driver.stats.round_trips == 1
    assert driver.stats.largest_batch == 2
    # The read observed the pre-write value.
    assert qs.get_result_set(read_id).scalar() == 10


def test_unknown_id_raises(store):
    qs, _ = store
    from repro.core.query_store import QueryId

    with pytest.raises(KeyError):
        qs.get_result_set(QueryId(qs, 999_999))


class TestQueryIdScoping:
    """Ids are per-store: no mutable class-level counter leaking across
    stores or benchmark runs."""

    def test_counters_are_independent_across_stores(self, sim_stack):
        db, clock, server, driver, batch_driver = sim_stack
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        a = QueryStore(batch_driver)
        b = QueryStore(batch_driver)
        id_a = a.register_query("SELECT v FROM t WHERE id = 1")
        id_b = b.register_query("SELECT v FROM t WHERE id = 1")
        assert id_a.value == 1
        assert id_b.value == 1

    def test_same_value_different_store_not_equal(self, sim_stack):
        db, clock, server, driver, batch_driver = sim_stack
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        a = QueryStore(batch_driver)
        b = QueryStore(batch_driver)
        id_a = a.register_query("SELECT v FROM t WHERE id = 1")
        id_b = b.register_query("SELECT v FROM t WHERE id = 1")
        assert id_a != id_b
        assert hash(id_a) != hash(id_b)

    def test_equal_ids_hash_equal(self, sim_stack):
        db, clock, server, driver, batch_driver = sim_stack
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        qs = QueryStore(batch_driver)
        qid = qs.register_query("SELECT v FROM t WHERE id = 1")
        twin = qs.register_query("SELECT v FROM t WHERE id = 1")
        assert qid == twin and hash(qid) == hash(twin)


def test_flush_noop_when_empty(store):
    qs, driver = store
    qs.flush()
    assert driver.stats.round_trips == 0


def test_batch_size_tracking(store):
    qs, _ = store
    ids = [qs.register_query("SELECT v FROM t WHERE id = ?", (i,))
           for i in range(4)]
    qs.get_result_set(ids[0])
    assert qs.stats.largest_batch == 4
    assert qs.stats.batches_flushed == 1
    assert qs.stats.queries_issued == 4


class TestAutoFlushStrategy:
    """§6.7's alternative execution strategy: flush at a size threshold."""

    def test_flushes_when_threshold_reached(self, sim_stack):
        from repro.core.query_store import QueryStore

        db, clock, server, driver, batch_driver = sim_stack
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        for i in range(6):
            db.execute("INSERT INTO t (id, v) VALUES (?, ?)", (i, i))
        qs = QueryStore(batch_driver, auto_flush_threshold=3)
        ids = [qs.register_query("SELECT v FROM t WHERE id = ?", (i,))
               for i in range(5)]
        # The first three shipped automatically; two still pend.
        assert batch_driver.stats.round_trips == 1
        assert qs.pending_count == 2
        # Already-flushed results are served from the cache.
        assert qs.get_result_set(ids[0]).scalar() == 0
        assert batch_driver.stats.round_trips == 1
        # Forcing a pending one flushes the remainder.
        assert qs.get_result_set(ids[4]).scalar() == 4
        assert batch_driver.stats.round_trips == 2

    def test_threshold_none_keeps_default_behaviour(self, sim_stack):
        from repro.core.query_store import QueryStore

        db, clock, server, driver, batch_driver = sim_stack
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        qs = QueryStore(batch_driver)
        for i in range(10):
            qs.register_query("SELECT v FROM t WHERE id = ?", (i,))
        assert batch_driver.stats.round_trips == 0
        assert qs.pending_count == 10
