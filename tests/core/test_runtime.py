import pytest

from repro.core.runtime import OptimizationFlags, SlothRuntime


@pytest.fixture
def runtime_factory(sim_stack):
    db, clock, server, driver, batch_driver = sim_stack
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    db.execute("INSERT INTO t (id, v) VALUES (1, 10)")

    def make(flags=None, lazy=True):
        return SlothRuntime(batch_driver, clock, server.cost_model,
                            optimizations=flags, lazy_mode=lazy), clock

    return make


class TestOptimizationFlags:
    def test_labels(self):
        assert OptimizationFlags.none().label() == "noopt"
        assert OptimizationFlags.all().label() == "SC+TC+BD"
        assert OptimizationFlags(True, False, True).label() == "SC+BD"

    def test_constructors(self):
        none = OptimizationFlags.none()
        assert not (none.selective_compilation or none.thunk_coalescing
                    or none.branch_deferral)


class TestRunOps:
    def test_nonlazy_mode_charges_plain_cost(self, runtime_factory):
        runtime, clock = runtime_factory(lazy=False)
        before = clock.phase_time("app")
        runtime.run_ops(100)
        cost = clock.phase_time("app") - before
        assert cost == pytest.approx(
            runtime.cost_model.app_op_ms * 100)

    def test_lazy_ops_cost_more_than_plain(self, runtime_factory):
        lazy_rt, clock = runtime_factory(OptimizationFlags.none())
        before = clock.phase_time("app")
        lazy_rt.run_ops(100)
        lazy_cost = clock.phase_time("app") - before

        plain_rt, clock = runtime_factory(lazy=False)
        before = clock.phase_time("app")
        plain_rt.run_ops(100)
        plain_cost = clock.phase_time("app") - before
        assert lazy_cost > 2 * plain_cost  # §3.2's overhead

    def test_coalescing_reduces_op_cost(self, runtime_factory):
        no_tc, clock = runtime_factory(OptimizationFlags(False, False, True))
        before = clock.phase_time("app")
        no_tc.run_ops(100)
        cost_no_tc = clock.phase_time("app") - before

        tc, clock = runtime_factory(OptimizationFlags(False, True, True))
        before = clock.phase_time("app")
        tc.run_ops(100)
        cost_tc = clock.phase_time("app") - before
        assert cost_tc < cost_no_tc

    def test_selective_compilation_exempts_nonpersistent(
            self, runtime_factory):
        sc, clock = runtime_factory(OptimizationFlags(True, False, False))
        before = clock.phase_time("app")
        sc.run_ops(100, persistent=False)
        cost = clock.phase_time("app") - before
        assert cost == pytest.approx(sc.cost_model.app_op_ms * 100)

    def test_without_bd_ops_flush_pending_batches(self, runtime_factory):
        runtime, _ = runtime_factory(OptimizationFlags(True, True, False))
        runtime.query("SELECT v FROM t WHERE id = ?", (1,))
        assert runtime.query_store.pending_count == 1
        runtime.run_ops(10)  # contains branch points -> forces
        assert runtime.query_store.pending_count == 0
        assert runtime.driver.stats.round_trips == 1

    def test_with_bd_ops_keep_batch_pending(self, runtime_factory):
        runtime, _ = runtime_factory(OptimizationFlags.all())
        runtime.query("SELECT v FROM t WHERE id = ?", (1,))
        runtime.run_ops(10)
        assert runtime.query_store.pending_count == 1
        assert runtime.driver.stats.round_trips == 0


class TestBranch:
    def test_branch_deferred_returns_none(self, runtime_factory):
        runtime, _ = runtime_factory(OptimizationFlags.all())
        result = runtime.branch(lambda: True, deferrable=True)
        assert result is None
        assert runtime.stats.branches_deferred == 1

    def test_branch_forced_without_bd(self, runtime_factory):
        runtime, _ = runtime_factory(OptimizationFlags.none())
        thunk = runtime.query("SELECT v FROM t WHERE id = ?", (1,))
        result = runtime.branch(thunk)
        assert result.scalar() == 10
        assert runtime.stats.branches_forced == 1

    def test_nondeferrable_branch_always_forces(self, runtime_factory):
        runtime, _ = runtime_factory(OptimizationFlags.all())
        assert runtime.branch(5, deferrable=False) == 5


class TestRequestLifecycle:
    def test_finish_request_flushes(self, runtime_factory):
        runtime, _ = runtime_factory()
        runtime.query("SELECT v FROM t WHERE id = ?", (1,))
        runtime.finish_request()
        assert runtime.query_store.pending_count == 0

    def test_nonlazy_query_executes_immediately(self, runtime_factory):
        runtime, _ = runtime_factory(lazy=False)
        result = runtime.query("SELECT v FROM t WHERE id = ?", (1,))
        assert result.scalar() == 10
        assert runtime.driver.stats.round_trips == 1


class TestAsyncBranchBarrier:
    """With branch deferral off, run_ops' branch-point flush is a true
    barrier even under async dispatch: the forced condition needs its
    results, so nothing may stay in flight."""

    def test_run_ops_barriers_in_flight_batches(self, sim_stack):
        db, clock, server, driver, batch_driver = sim_stack
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        db.execute("INSERT INTO t (id, v) VALUES (1, 10)")
        flags = OptimizationFlags(True, True, False)  # BD off
        runtime = SlothRuntime(batch_driver, clock, server.cost_model,
                               optimizations=flags,
                               auto_flush_threshold=1, async_dispatch=True)
        runtime.query("SELECT v FROM t WHERE id = 1")  # ships in background
        assert runtime.query_store.in_flight_count == 1
        network_before = clock.phase_time("network")
        runtime.run_ops(5)  # modeled branch point: forces the condition
        assert runtime.query_store.in_flight_count == 0
        # The barrier charged the round trip (nothing could hide it).
        assert clock.phase_time("network") > network_before
