"""The paper's formal core: one program, two semantics, same answer.

Writes a kernel-language program (Fig. 4 syntax), runs it under standard
semantics and extended lazy semantics (basic and fully optimized), and
shows that the final states agree while the lazy runs use fewer round
trips — the Sec. 3.8 soundness theorem, observably.

Run:  python examples/kernel_soundness.py
"""

from repro.compiler.lazy_interp import LazyInterpreter
from repro.compiler.optimize import OptimizationPlan
from repro.compiler.parser import parse_program
from repro.compiler.standard_interp import StandardInterpreter

SOURCE = """
# Fetch a patient id, then three related records (Fig. 2's shape).
fn summarize(v) {                    # effect-free: deferrable whole
  t := v * 10;
  return t;
}

patient := R(1);
encounters := R(patient + 1);
visits := R(patient + 2);
active := R(patient + 3);

if (encounters > visits) { best := encounters; } else { best := visits; }

score := summarize(best);
W(score);                            # write: flushes the pending batch
audit := R(99);
output score;
output audit;
"""

DB = {1: 5, 6: 12, 7: 9, 8: 3, 99: 1}


def describe(label, result, extra=""):
    print(f"{label:22s} output={result.output} "
          f"round_trips={result.round_trips} {extra}")


def main():
    program = parse_program(SOURCE)

    std = StandardInterpreter(program, DB).run()
    describe("standard", std)

    lazy = LazyInterpreter(program, DB).run()
    describe("lazy (basic)", lazy,
             f"thunks={lazy.thunks_allocated} "
             f"batches={lazy.store.batches}")

    plan = OptimizationPlan(program, selective_compilation=True,
                            thunk_coalescing=True, branch_deferral=True)
    optimized = LazyInterpreter(program, DB, plan).run()
    describe("lazy (SC+TC+BD)", optimized,
             f"thunks={optimized.thunks_allocated} "
             f"batches={optimized.store.batches}")

    assert std.env == lazy.env == optimized.env
    assert std.db == lazy.db == optimized.db
    assert std.output == lazy.output == optimized.output
    assert optimized.round_trips <= lazy.round_trips <= std.round_trips
    print("\nsoundness holds: identical env/db/output across semantics;")
    print(f"round trips {std.round_trips} (standard) -> "
          f"{lazy.round_trips} (lazy) -> {optimized.round_trips} "
          f"(optimized)")


if __name__ == "__main__":
    main()
