"""Quickstart: extended lazy evaluation batching queries into round trips.

Builds an embedded database behind a simulated network, registers queries
with the Sloth runtime, and shows that (a) nothing executes until a value
is needed, (b) the whole pending batch ships in one round trip, and
(c) writes flush the batch immediately, preserving order.

Run:  python examples/quickstart.py
"""

from repro.core import SlothRuntime
from repro.net import BatchDriver, CostModel, DatabaseServer, SimClock
from repro.sqldb import Database


def main():
    db = Database()
    db.execute("CREATE TABLE account (id INT PRIMARY KEY, owner TEXT, "
               "balance FLOAT)")
    for i, (owner, balance) in enumerate(
            [("ada", 120.0), ("grace", 80.5), ("alan", 42.0)]):
        db.execute("INSERT INTO account (id, owner, balance) "
                   "VALUES (?, ?, ?)", (i, owner, balance))

    cost_model = CostModel(round_trip_ms=0.5)
    clock = SimClock()
    driver = BatchDriver(DatabaseServer(db, cost_model), clock, cost_model)
    runtime = SlothRuntime(driver, clock, cost_model)

    # Register three reads: *zero* round trips so far.
    balances = [
        runtime.query("SELECT balance FROM account WHERE id = ?", (i,))
        for i in range(3)
    ]
    print(f"after registering 3 queries: round trips = "
          f"{driver.stats.round_trips}, pending = "
          f"{runtime.query_store.pending_count}")

    # Using any value forces the whole batch in ONE round trip.
    total = sum(thunk.force().scalar() for thunk in balances)
    print(f"total balance = {total}")
    print(f"after forcing: round trips = {driver.stats.round_trips}, "
          f"largest batch = {driver.stats.largest_batch}")

    # Writes are never deferred; pending reads ship alongside them.
    audit = runtime.query("SELECT COUNT(*) AS n FROM account")
    runtime.execute_write(
        "UPDATE account SET balance = balance + 1 WHERE id = 0")
    print(f"after write: round trips = {driver.stats.round_trips} "
          f"(read + write travelled together)")
    print(f"account count (already cached): {audit.force().scalar()}")
    print(f"virtual time elapsed: {clock.now:.2f} ms "
          f"(breakdown: {clock.breakdown()})")


if __name__ == "__main__":
    main()
