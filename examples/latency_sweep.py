"""Network-latency sweep on the itracker benchmarks (Fig. 9 in miniature).

Shows the paper's headline sensitivity: the benefit of batching grows with
round-trip time, exceeding 3x at WAN latencies.

Run:  python examples/latency_sweep.py
"""

from repro.apps import itracker
from repro.bench.harness import compare_pages
from repro.bench.report import ratio_stats
from repro.net.clock import CostModel

LATENCIES_MS = (0.25, 0.5, 1.0, 2.0, 5.0, 10.0)


def main():
    print("building itracker...")
    db, dispatcher = itracker.build_app()
    urls = itracker.BENCHMARK_URLS

    print(f"{'RTT ms':>8s} {'min':>6s} {'median':>8s} {'max':>6s}")
    for rtt in LATENCIES_MS:
        comparisons = compare_pages(db, dispatcher, urls,
                                    CostModel(round_trip_ms=rtt))
        stats = ratio_stats([c.speedup for c in comparisons])
        print(f"{rtt:8.2f} {stats['min']:6.2f} {stats['median']:8.2f} "
              f"{stats['max']:6.2f}")
    print("\nspeedup grows with latency: round trips are the cost that")
    print("Sloth eliminates, so the slower the network, the bigger the win")


if __name__ == "__main__":
    main()
