"""Load real benchmark pages under the original and Sloth stacks.

Reproduces the paper's Fig. 1/Fig. 2 scenario end-to-end: the OpenMRS
patient dashboard and the encounterDisplay page (§6.1's example of ~50
lazily-fetched concepts collapsing into one batch).

Run:  python examples/webapp_pageload.py
"""

from repro.apps import openmrs
from repro.bench.harness import load_page
from repro.net.clock import CostModel
from repro.web.appserver import MODE_ORIGINAL, MODE_SLOTH

PAGES = (
    "patientDashboardForm.jsp",
    "encounters/encounterDisplay.jsp",
    "admin/users/alertList.jsp",
)


def main():
    print("building OpenMRS (schema + sample data)...")
    db, dispatcher = openmrs.build_app()
    cost_model = CostModel(round_trip_ms=0.5)

    header = (f"{'page':38s} {'mode':9s} {'time ms':>9s} {'r-trips':>8s} "
              f"{'queries':>8s} {'max batch':>10s}")
    print(header)
    print("-" * len(header))
    for url in PAGES:
        results = {}
        for mode in (MODE_ORIGINAL, MODE_SLOTH):
            r = load_page(db, dispatcher, url, cost_model, mode)
            results[mode] = r
            print(f"{url:38s} {mode:9s} {r.time_ms:9.2f} "
                  f"{r.round_trips:8d} {r.queries_issued:8d} "
                  f"{r.largest_batch:10d}")
        speedup = (results[MODE_ORIGINAL].time_ms
                   / results[MODE_SLOTH].time_ms)
        print(f"{'':38s} -> speedup {speedup:.2f}x\n")

    # The rendered pages are identical: laziness changes *when* queries
    # run, never what the user sees.
    orig = load_page(db, dispatcher, PAGES[1], cost_model, MODE_ORIGINAL)
    sloth = load_page(db, dispatcher, PAGES[1], cost_model, MODE_SLOTH)
    assert orig.html == sloth.html
    print("HTML output identical across modes:", len(orig.html), "chars")


if __name__ == "__main__":
    main()
