"""Wall-clock lane smoke: the chunked engines agree with the row
engine and are not slower where it matters.

Runs the :mod:`repro.bench.experiments.wallclock` experiment in smoke
mode (small synthetic table, few repeats) and asserts

- every synthetic and app query returns byte-identical rows and
  identical ``rows_touched`` under all three engines (the experiment
  records the comparison), and
- the batch engine is no slower than the row engine — and the columnar
  engine no slower than batch — on the scan/filter microbench: the
  loosest forms of the >=2x and >=1.5x headlines so the assertions stay
  robust on noisy CI runners; ``tools/bench_wallclock.py`` (and the
  committed ``BENCH_wallclock.json``) carries the real numbers,
- zone maps actually skip chunks on the range-bounded scan/filter
  microbench (its id bound correlates with chunk order), and
- the columnar dictionary-code group-by is no slower than batch on the
  grouped-aggregate microbench.
"""

import pytest

from repro.bench.experiments import wallclock


@pytest.fixture(scope="module")
def result():
    return wallclock.run(smoke=True)


def test_engines_agree_everywhere(result):
    for name, numbers in result["synthetic"].items():
        assert numbers["match"], f"synthetic:{name} results diverge"
    for app, per_app in result["apps"].items():
        for name, numbers in per_app["queries"].items():
            assert numbers["match"], f"{app}:{name} results diverge"


def test_batch_not_slower_on_scan_filter(result):
    print()
    print(wallclock.format_result(result))
    scan = result["synthetic"]["scan_filter"]
    assert scan["batch_ms"] <= scan["row_ms"], (
        f"batch {scan['batch_ms']}ms vs row {scan['row_ms']}ms")


def test_columnar_not_slower_than_batch_on_scan_filter(result):
    scan = result["synthetic"]["scan_filter"]
    assert scan["columnar_ms"] <= scan["batch_ms"], (
        f"columnar {scan['columnar_ms']}ms vs batch {scan['batch_ms']}ms")


def test_zone_maps_skip_chunks_on_scan_filter(result):
    scan = result["synthetic"]["scan_filter"]
    assert scan["chunks_skipped"] > 0, (
        "range-bounded scan_filter skipped no chunks")


def test_columnar_not_slower_than_batch_on_group_filter_agg(result):
    agg = result["synthetic"]["group_filter_agg"]
    assert agg["columnar_ms"] <= agg["batch_ms"], (
        f"columnar {agg['columnar_ms']}ms vs batch {agg['batch_ms']}ms")
