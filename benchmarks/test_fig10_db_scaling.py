"""Fig. 10: page load time vs database size (entity-count sweeps)."""

from repro.bench.experiments import fig10_dbscale


def test_fig10_db_scaling(benchmark):
    result = benchmark.pedantic(fig10_dbscale.run_modes, rounds=1,
                                iterations=1)
    print()
    print(fig10_dbscale.format_modes_result(result))

    for app in ("itracker", "openmrs"):
        rows = result[app]
        # Paper: Sloth wins at every database size.
        for row in rows:
            assert row["sloth_ms"] < row["original_ms"]
        # Paper: the gap widens as entity count grows (Sloth scales
        # better thanks to batching + parallel execution).
        first_gap = rows[0]["original_ms"] / rows[0]["sloth_ms"]
        last_gap = rows[-1]["original_ms"] / rows[-1]["sloth_ms"]
        assert last_gap > first_gap
        # Paper: the batch size grows with the entity count
        # (68 -> 1880 queries in their sweep).
        batches = [row["sloth_max_batch"] for row in rows]
        assert batches == sorted(batches)
        assert batches[-1] > batches[0]
