"""Fig. 9: speedup growth as network round-trip time increases."""

from repro.bench.experiments import fig9_network


def test_fig9_network_scaling(benchmark):
    result = benchmark.pedantic(fig9_network.run, rounds=1, iterations=1)
    print()
    print(fig9_network.format_result(result))

    for app in ("itracker", "openmrs"):
        medians = [result[app][rtt]["speedup"]["median"]
                   for rtt in fig9_network.LATENCIES_MS]
        # Paper: speedup increases monotonically with latency...
        assert medians == sorted(medians)
        # ...exceeding 3x at 10 ms for both applications.
        assert result[app][10.0]["speedup"]["max"] > 3.0
        assert result[app][10.0]["speedup"]["median"] > 2.0
        # Round-trip ratios are latency-invariant (same query behaviour).
        ratios = [result[app][rtt]["round_trips"]["median"]
                  for rtt in fig9_network.LATENCIES_MS]
        assert max(ratios) - min(ratios) < 1e-9
