"""Fig. 9: speedup growth as network round-trip time increases."""

from repro.bench.experiments import fig9_network


def test_fig9_network_scaling(benchmark):
    result = benchmark.pedantic(fig9_network.run, rounds=1, iterations=1)
    print()
    print(fig9_network.format_result(result))

    for app in ("itracker", "openmrs"):
        medians = [result[app][rtt]["speedup"]["median"]
                   for rtt in fig9_network.LATENCIES_MS]
        # Paper: speedup increases monotonically with latency...
        assert medians == sorted(medians)
        # ...exceeding 3x at 10 ms for both applications.
        assert result[app][10.0]["speedup"]["max"] > 3.0
        assert result[app][10.0]["speedup"]["median"] > 2.0
        # Round-trip ratios are latency-invariant (same query behaviour).
        ratios = [result[app][rtt]["round_trips"]["median"]
                  for rtt in fig9_network.LATENCIES_MS]
        assert max(ratios) - min(ratios) < 1e-9
        # Async dispatch (§6.7) strictly dominates synchronous batching at
        # every swept latency: identical batches, only the dispatch
        # discipline differs, so overlapped round trips can only win.
        for rtt in fig9_network.LATENCIES_MS:
            asyn = result[app][rtt]["async"]
            assert asyn["async_ms"] < asyn["sync_ms"]
            assert asyn["overlap_ms"] > 0
            # The stall the async run charges never exceeds what sync
            # paid for network+db, and the pages stayed byte-identical
            # with no single page slower.
            assert asyn["stall_ms"] < asyn["sync_netdb_ms"]
            assert asyn["identical"]
            assert asyn["regressions"] == 0
