"""Concurrent serving throughput: sharing must dominate at every load.

Acceptance criteria for the Fig-7-under-contention reproduction:

- the sweep reaches at least 1000 simulated users;
- at *every* swept user count the cross-request-sharing series is at least
  as good as the contend-only baseline on both throughput and mean
  response (dominance — sharing can only remove work from a round);
- contention is real: the unshared baseline's mean response grows with
  load and its queueing delay is nonzero at the top of the sweep;
- sharing actually merges work at scale (merged groups > 0), and its win
  is strict once the station saturates.
"""

from repro.bench.experiments import throughput_concurrent

#: Trimmed sweep for CI: still reaches the 1000-user Fig-7 ceiling.
SMOKE_USERS = (1, 10, 100, 1000)

EPS = 1e-9


def test_throughput_concurrent(benchmark):
    result = benchmark.pedantic(
        throughput_concurrent.run, kwargs={"user_counts": SMOKE_USERS},
        rounds=1, iterations=1)
    print()
    print(throughput_concurrent.format_result(result))

    points = result["points"]
    assert [p["users"] for p in points] == list(SMOKE_USERS)
    assert max(p["users"] for p in points) >= 1000

    # Dominance at every point — the gate CI enforces on the artifact.
    assert result["sharing_dominates_everywhere"]
    for point in points:
        label = f"users={point['users']}"
        shared, unshared = point["shared"], point["unshared"]
        assert shared["throughput_pps"] >= \
            unshared["throughput_pps"] - EPS, label
        assert shared["mean_response_ms"] <= \
            unshared["mean_response_ms"] + EPS, label

    # Contention is real in the baseline: response time climbs with load
    # and the heaviest point spends time queueing.
    unshared_means = [p["unshared"]["mean_response_ms"] for p in points]
    assert unshared_means[-1] > unshared_means[0]
    assert points[-1]["unshared"]["total_queue_ms"] > 0

    # Sharing merges real work under load and wins strictly at saturation.
    heavy = points[-1]
    assert heavy["shared"]["merged_scan_groups"] \
        + heavy["shared"]["merged_pk_groups"] > 0
    assert heavy["shared"]["throughput_pps"] > \
        heavy["unshared"]["throughput_pps"]
