"""Join optimizer rows-touched deltas over the fig. 5 / fig. 6 databases.

Executes the multi-table report queries of the itracker and OpenMRS
benchmark applications (``repro.apps.*.reports``) against the seeded app
databases twice — once through the cost-based pipeline (join reordering +
index nested-loop joins) and once pinned to FROM-order execution with
sequential scans under joins (the PR-1 baseline) — and asserts that

- every query returns the identical result multiset under both pipelines,
- no query touches more rows optimized than in FROM order, and
- in aggregate per app the optimized plans touch at most half the rows —
  the quadratic row touches the planner now avoids on multi-table pages.
"""

import pytest

from repro.apps import itracker, openmrs
from repro.apps.itracker import reports as itracker_reports
from repro.apps.openmrs import reports as openmrs_reports
from repro.sqldb.plan import FROM_ORDER_OPTIONS


@pytest.mark.parametrize("app,mod,reports", [
    ("itracker", itracker, itracker_reports),
    ("openmrs", openmrs, openmrs_reports),
])
def test_report_queries_touch_fewer_rows(app, mod, reports):
    optimized_db, _ = mod.build_app()
    from_order_db, _ = mod.build_app()
    from_order_db.optimizer_options = FROM_ORDER_OPTIONS

    total_optimized = total_from_order = 0
    print()
    for name, sql, params in reports.REPORT_QUERIES:
        opt = optimized_db.execute(sql, params)
        base = from_order_db.execute(sql, params)
        assert sorted(opt.rows, key=repr) == sorted(base.rows, key=repr), name
        assert opt.rows_touched <= base.rows_touched, name
        total_optimized += opt.rows_touched
        total_from_order += base.rows_touched
        print(f"  {app}:{name}: {opt.rows_touched} rows touched "
              f"(FROM order: {base.rows_touched})")

    assert total_optimized < total_from_order
    # The headline claim: cost-based join ordering + index nested-loop
    # joins cut the multi-table pages' row touches by more than half.
    assert total_optimized * 2 < total_from_order, (
        f"{app}: {total_optimized} vs {total_from_order}")
