"""Shared fixtures for the figure-regeneration benchmarks.

Each ``test_figN_*`` benchmark regenerates one of the paper's figures or
tables, prints the paper-style output, and asserts the qualitative result
(who wins, by roughly what factor).  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): marks a benchmark as regenerating one "
        "of the paper's figures")


@pytest.fixture(scope="session")
def itracker_app():
    from repro.apps import itracker

    return itracker.build_app()


@pytest.fixture(scope="session")
def openmrs_app():
    from repro.apps import openmrs

    return openmrs.build_app()
