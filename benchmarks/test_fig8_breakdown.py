"""Fig. 8: aggregate time breakdown (network / app server / DB)."""

from repro.bench.experiments import fig8_breakdown


def test_fig8_breakdown(benchmark):
    result = benchmark.pedantic(fig8_breakdown.run, rounds=1, iterations=1)
    print()
    print(fig8_breakdown.format_result(result))

    for app in ("itracker", "openmrs"):
        agg = result[app]
        # Paper: aggregate network time drops sharply (itracker
        # 226k -> 105k ms, OpenMRS 43k -> 24k ms — roughly halved).
        assert agg["sloth"]["network"] < 0.6 * agg["original"]["network"]
        # Paper: database time decreases (fewer queries + parallel batch
        # execution on the server).
        assert agg["sloth"]["db"] < agg["original"]["db"]
        # Paper: the app-server *share* grows under Sloth.
        orig_share = fig8_breakdown.shares(agg["original"])["app"]
        sloth_share = fig8_breakdown.shares(agg["sloth"])["app"]
        assert sloth_share > orig_share
