"""Fig. 5: itracker page-load / round-trip / query-count CDFs."""

from repro.bench.experiments import fig5_itracker


def test_fig5_itracker(benchmark):
    result = benchmark.pedantic(fig5_itracker.run, rounds=1, iterations=1)
    print()
    print(fig5_itracker.format_result(result))

    # Paper: speedups up to 2.08x, median 1.27x, Sloth never slower.
    assert result["speedup"]["median"] > 1.1
    assert result["speedup"]["max"] > 1.8
    assert result["speedup"]["min"] > 0.9
    # Paper: round-trip reductions on every benchmark (ratios 1.5-4x).
    assert result["round_trips"]["min"] > 1.0
    # Paper: Sloth issues fewer total queries on most pages (5-10% fewer),
    # and batches multiple queries on all benchmarks.
    assert result["queries"]["median"] >= 1.0
    assert result["max_batch"] >= 10
