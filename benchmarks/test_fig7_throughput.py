"""Fig. 7: closed-loop throughput vs number of clients."""

from repro.bench.experiments import fig7_throughput


def test_fig7_throughput(benchmark):
    result = benchmark.pedantic(
        fig7_throughput.run,
        kwargs={"client_counts": list(range(1, 80, 2))},
        rounds=1, iterations=1)
    print()
    print(fig7_throughput.format_result(result))

    # Paper: Sloth's peak throughput exceeds the original's (~1.5x there;
    # our miniature substrate lands lower but clearly above 1).
    assert result["peak_ratio"] > 1.1
    # Paper: Sloth peaks at a lower client count.
    assert result["peak_sloth"][0] < result["peak_original"][0]
    # Paper: both curves decline once the app server is CPU-bound.
    for mode in ("original", "sloth"):
        curve = result["curves"][mode]
        peak_value = max(v for _, v in curve)
        assert curve[-1][1] < peak_value
