"""Fig. 13: pure lazy-evaluation overhead on TPC-C / TPC-W."""

from repro.bench.experiments import fig13_overhead


def test_fig13_overhead(benchmark):
    result = benchmark.pedantic(
        fig13_overhead.run,
        kwargs={"tpcc_transactions": 60, "tpcw_interactions": 80},
        rounds=1, iterations=1)
    print()
    print(fig13_overhead.format_result(result))

    for name, stats in result.items():
        # Paper: Sloth is consistently slower with no batching to exploit,
        # by 5-15% (we allow 2-20% for the miniature substrate).
        assert stats["sloth_ms"] > stats["original_ms"], name
        assert 0.02 < stats["overhead"] < 0.20, (name, stats["overhead"])
