"""Ordered-index rows-touched deltas over the seeded app databases.

Runs the :mod:`repro.bench.experiments.range_scan` experiment — the
range/ORDER BY report queries of itracker, OpenMRS and TPC-C, executed
through the full pipeline and through a baseline with ordered access paths
disabled (sequential scans + explicit sorts) — and asserts that

- every query returns the identical result multiset under both pipelines
  (the experiment records the comparison),
- no query touches more rows with ordered access than without, and
- in aggregate per app the ordered plans touch at most half the rows —
  the headline claim for range-predicate report pages.
"""

import pytest

from repro.bench.experiments import range_scan


@pytest.fixture(scope="module")
def result():
    return range_scan.run()


def test_results_identical_and_never_worse(result):
    for app, per_app in result.items():
        for name, numbers in per_app["queries"].items():
            assert numbers["match"], f"{app}:{name} results diverge"
            assert numbers["optimized"] <= numbers["baseline"], (
                f"{app}:{name} touched more rows with ordered access")


def test_range_reports_touch_half_the_rows(result):
    print()
    print(range_scan.format_result(result))
    for app, per_app in result.items():
        totals = per_app["totals"]
        # The headline claim: ordered-index range scans cut the range
        # report pages' row touches by more than half per app.
        assert totals["optimized"] * 2 < totals["baseline"], (
            f"{app}: {totals['optimized']} vs {totals['baseline']}")
