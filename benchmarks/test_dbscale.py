"""Fig. 10 analogue with backends that scale: the sharded sweep.

Scale ``s`` runs ``s`` shards over ``s``× the data with ``s``× the
concurrent users.  The per-shard slice stays constant, so sharded page
latency must stay ~flat (within the 1.3× bound) while the single-node
series degrades — and the sharded backend must win outright once the
data outgrows one node.
"""

from repro.bench.experiments import fig10_dbscale


def test_dbscale_sharded_flat_and_dominant(benchmark):
    result = benchmark.pedantic(fig10_dbscale.run, rounds=1, iterations=1)
    print()
    print(fig10_dbscale.format_result(result))

    rows = result["rows"]
    assert [r["scale"] for r in rows] == [1, 2, 4]
    # Flatness: 4x data x 4x users on 4 shards costs at most 1.3x the
    # scale-1 page latency.
    assert result["flat_within_1_3x"], result["flatness_ratio"]
    # Dominance: at the largest size the sharded backend beats the
    # single node outright (mean and p95).
    assert result["sharded_dominates_at_max"]
    last = rows[-1]
    assert last["sharded_p95_ms"] <= last["single_p95_ms"]
    # The single-node series actually degrades across the sweep — the
    # flat sharded line is meaningful only against a rising baseline.
    assert rows[-1]["single_mean_ms"] > rows[0]["single_mean_ms"]
