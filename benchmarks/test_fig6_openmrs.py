"""Fig. 6: OpenMRS page-load / round-trip / query-count CDFs."""

from repro.bench.experiments import fig6_openmrs


def test_fig6_openmrs(benchmark):
    result = benchmark.pedantic(fig6_openmrs.run, rounds=1, iterations=1)
    print()
    print(fig6_openmrs.format_result(result))

    # Paper: speedups up to 2.1x (median 1.15x).
    assert result["speedup"]["median"] > 1.1
    assert result["speedup"]["max"] > 1.8
    # Paper: round trips reduced on every benchmark (1-13x).
    assert result["round_trips"]["min"] > 1.0
    assert result["round_trips"]["max"] > 5.0
    # Paper: a few OpenMRS pages issue *more* queries under Sloth
    # (queries ratio < 1), most issue the same or fewer.
    assert result["queries"]["min"] < 1.0
    assert result["queries"]["median"] >= 0.95
    # Paper: batches up to 68 queries on encounterDisplay.
    assert result["max_batch"] >= 30
