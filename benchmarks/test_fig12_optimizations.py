"""Fig. 12: optimization ablation (noopt / SC / SC+TC / SC+TC+BD / +SS)."""

from repro.bench.experiments import fig12_optimizations


def test_fig12_optimizations(benchmark):
    result = benchmark.pedantic(fig12_optimizations.run, rounds=1,
                                iterations=1)
    print()
    print(fig12_optimizations.format_result(result))

    for app in ("itracker", "openmrs"):
        per_config = result[app]["times"]
        # Paper: each optimization helps, in the order they are enabled.
        assert per_config["SC"] < per_config["noopt"]
        assert per_config["SC+TC"] < per_config["SC"]
        assert per_config["SC+TC+BD"] < per_config["SC+TC"]
        # Paper: >2x difference between none and all optimizations (our
        # miniature controllers land somewhat lower; see EXPERIMENTS.md).
        assert per_config["noopt"] / per_config["SC+TC+BD"] > 1.4
        # Branch deferral contributes a real, positive gain.  (In the
        # paper BD is the largest single win; our miniature controllers
        # have far fewer branch sites than 300k lines of Java, so its
        # share is smaller here — documented in EXPERIMENTS.md.)
        gain_bd = per_config["SC+TC"] - per_config["SC+TC+BD"]
        assert gain_bd > 0
        # The batch shared-scan series: merging union-compatible SELECTs
        # into one scan never makes a batch slower (a shared group costs
        # at most what its most expensive member cost alone), and on these
        # workloads it finds real sharing to report.
        assert per_config["SC+TC+BD+SS"] <= per_config["SC+TC+BD"] * 1.001
        assert result[app]["rows_saved"] > 0
