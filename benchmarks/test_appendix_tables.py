"""Appendix tables: per-benchmark detail (time, round trips, batches).

Regenerates the paper's appendix tables — one row per benchmark page with
original/Sloth load time, round trips, max batch size and queries issued.
"""

from repro.bench.experiments import fig5_itracker, fig6_openmrs
from repro.bench.report import format_table


def _rows(result):
    return [
        (c.url, round(c.original.time_ms, 1), c.original.round_trips,
         round(c.sloth.time_ms, 1), c.sloth.round_trips,
         c.sloth.largest_batch, c.sloth.queries_issued)
        for c in result["comparisons"]
    ]


HEADERS = ("benchmark", "orig ms", "orig r-trips", "sloth ms",
           "sloth r-trips", "max batch", "total queries")


def test_appendix_itracker_table(benchmark):
    result = benchmark.pedantic(fig5_itracker.run, rounds=1, iterations=1)
    print()
    print(format_table(HEADERS, _rows(result),
                       title="Appendix — iTracker benchmarks"))
    # Every benchmark must batch at least two queries somewhere.
    assert all(c.sloth.largest_batch >= 2 for c in result["comparisons"])
    assert len(result["comparisons"]) == 38  # the paper's 38 pages


def test_appendix_openmrs_table(benchmark):
    result = benchmark.pedantic(fig6_openmrs.run, rounds=1, iterations=1)
    print()
    print(format_table(HEADERS, _rows(result),
                       title="Appendix — OpenMRS benchmarks"))
    assert all(c.sloth.largest_batch >= 2 for c in result["comparisons"])
    assert len(result["comparisons"]) == 112  # the paper's 112 pages
