"""Fig. 11: persistence analysis method counts (selective compilation)."""

from repro.bench.experiments import fig11_persistence


def test_fig11_persistence(benchmark):
    result = benchmark.pedantic(fig11_persistence.run, rounds=1,
                                iterations=1)
    print()
    print(fig11_persistence.format_result(result))

    # Paper: itracker 2031 persistent / 421 non-persistent (17%);
    # OpenMRS 7616 / 2097 (22%).  The analysis over the reconstructed
    # inventories must land close to those proportions.
    it = result["itracker"]
    om = result["openmrs"]
    assert abs(it["persistent"] - 2031) / 2031 < 0.05
    assert abs(it["non_persistent"] - 421) / 421 < 0.05
    assert abs(om["persistent"] - 7616) / 7616 < 0.05
    assert abs(om["non_persistent"] - 2097) / 2097 < 0.05
    assert 0.10 < it["non_persistent_fraction"] < 0.30
    assert 0.15 < om["non_persistent_fraction"] < 0.30
