"""Hot-page loads through the cross-request result cache.

Asserts the tentpole claim of the result-cache subsystem: repeated
identical page loads are served from the cache — zero storage rows
touched, byte-identical output, and a measurable speedup (dramatic on the
database phase the cache eliminates, strictly positive on total load
time) — on all three benchmark applications, in both execution modes.
"""

from repro.bench.experiments import hot_page_cache


def test_hot_page_cache(benchmark):
    result = benchmark.pedantic(hot_page_cache.run, rounds=1, iterations=1)
    print()
    print(hot_page_cache.format_result(result))

    measurements = [
        (f"{app}:{mode}", numbers)
        for app, per_app in result.items()
        for mode, numbers in per_app.items()
        if mode not in ("cache", "driver")
    ]
    assert len(measurements) == 5  # itracker/openmrs x 2 modes + tpcc batch
    for label, numbers in measurements:
        # Hot loads executed nothing: every cached statement touched zero
        # storage rows and returned byte-identical output.
        assert numbers["hot_rows_touched"] == 0, label
        assert numbers["output_identical"], label
        assert numbers["result_cache_hits"] > 0, label
        # The database phase all but disappears...
        assert numbers["db_speedup"] > 2, label
        # ...and the total load time strictly improves (network and
        # rendering are untouched by a server-side cache, so the total
        # win is bounded by the page's database share).
        assert numbers["hot_ms_per_load"] < numbers["cold_ms"], label
        assert numbers["speedup"] > 1.01, label

    # The cache observed real traffic: hits dominate misses on hot loads
    # and nothing was spuriously invalidated (these pages only read).
    for app in ("itracker", "openmrs", "tpcc"):
        stats = result[app]["cache"]
        assert stats["hits"] > stats["misses"], app
        assert stats["invalidations"] == 0, app

    # Driver-level snapshots surface the hits too (what the harness and
    # the exported JSON read), agreeing with the independently-maintained
    # server-side counter the "batch" record reports.
    driver_stats = result["tpcc"]["driver"]
    assert driver_stats["result_cache_hits"] > 0
    assert driver_stats["result_cache_hits"] == \
        result["tpcc"]["batch"]["result_cache_hits"]
