"""Async dispatch: overlap must be real, free of regressions, and safe.

Acceptance criteria from the §6.7 execution-strategy reproduction:

- differential equivalence — every benchmark page renders byte-identically
  under sync and async dispatch (same batches, same rows; only the clock
  differs), and no single page is slower under async;
- measured overlap — async total page time is never above sync at any swept
  latency, strictly below at >= 5 ms RTT (in fact at every latency here),
  and the reported residual ``stall_ms`` stays strictly below the
  network+db time the sync run charged.
"""

from repro.bench.experiments import async_overlap

APPS = ("itracker", "openmrs", "tpcc")
EPS = 1e-9


def test_async_overlap(benchmark):
    result = benchmark.pedantic(async_overlap.run, rounds=1, iterations=1)
    print()
    print(async_overlap.format_result(result))

    for app in APPS:
        per_latency = result[app]
        assert set(per_latency) == set(async_overlap.LATENCIES_MS)
        for rtt, rec in per_latency.items():
            label = f"{app}@{rtt}ms"
            # Differential equivalence: identical output, and not one
            # page got slower (async <= sync holds page by page).
            assert rec["identical"], label
            assert rec["regressions"] == 0, label
            # Async never loses, and strictly wins at every latency.
            assert rec["async_ms"] < rec["sync_ms"], label
            # Overlap is real: the async run stalled for strictly less
            # than the network+db time the sync run charged, and the
            # difference shows up as hidden (overlapped) time.
            assert rec["stall_ms"] < rec["sync_netdb_ms"], label
            assert rec["overlap_ms"] > 0, label
            # The charged breakdown stays consistent: async network+db is
            # exactly the residual stall (plus any synchronous write/force
            # flushes), never more than sync's.
            assert rec["async_netdb_ms"] <= rec["sync_netdb_ms"] + EPS, label

    # Speedup grows with latency on the web apps: the more round-trip time
    # there is, the more there is to hide (cf. Fig. 9).
    for app in ("itracker", "openmrs"):
        speedups = [result[app][rtt]["speedup"]
                    for rtt in async_overlap.LATENCIES_MS]
        assert speedups[-1] > speedups[0]
